//! LM33x — auditing the adaptive performance-model store.
//!
//! The adaptive loop (`locmps run --adapt`, the `remold` recovery, the
//! serve daemon's cross-job learning) molds against profiles corrected by
//! a [`PerfModelStore`]. These lints keep that loop honest:
//!
//! * **LM330** (Info) reports tasks whose observed runtimes have drifted
//!   from their profiles beyond [`DIVERGENCE_THRESHOLD`] — the signal
//!   that static molding is working from fiction;
//! * **LM331** (Error) fires when the store names tasks that do not exist
//!   in the graph — a stale store from a different workload, whose
//!   corrections would silently not apply (or worse, apply to an
//!   unrelated task that happens to share a name);
//! * **LM332** (Error) fires when the store's own invariants are broken
//!   (possible only for externally loaded JSON — `observe()` cannot
//!   produce such a store).

use std::collections::HashSet;

use locmps_runtime::PerfModelStore;
use locmps_taskgraph::TaskGraph;

use crate::codes;
use crate::diag::{Diagnostic, Report, Severity};

/// Median observed/predicted ratios further than this from 1.0 are
/// reported as model divergence (LM330).
pub const DIVERGENCE_THRESHOLD: f64 = 0.25;

/// Audits `store` against the graph it is about to correct.
pub fn analyze_model(store: &PerfModelStore, g: &TaskGraph) -> Report {
    let mut report = Report::new();

    for violation in store.validate() {
        report.push(Diagnostic::new(
            codes::INCONSISTENT_MODEL,
            Severity::Error,
            "model-store",
            violation,
        ));
    }

    let known: HashSet<&str> = g.tasks().map(|(_, t)| t.name.as_str()).collect();
    for (name, widths) in store.tasks() {
        if !known.contains(name) {
            report.push(
                Diagnostic::new(
                    codes::STALE_MODEL,
                    Severity::Error,
                    name,
                    "model store names a task absent from this graph",
                )
                .with("observed_widths", widths.len()),
            );
            continue;
        }
        if let Some(div) = store.divergence(name) {
            if div > DIVERGENCE_THRESHOLD {
                let n_obs: usize = widths.iter().map(|w| w.ratios().len()).sum();
                report.push(
                    Diagnostic::new(
                        codes::MODEL_DIVERGENCE,
                        Severity::Info,
                        name,
                        format!(
                            "observed runtimes diverge from the profile by up to {:.0}%",
                            div * 100.0
                        ),
                    )
                    .with("max_divergence", format!("{div:.3}"))
                    .with("observations", n_obs),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_speedup::ExecutionProfile;

    fn graph_ab() -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_task("a", ExecutionProfile::linear(10.0));
        g.add_task("b", ExecutionProfile::linear(5.0));
        g
    }

    #[test]
    fn clean_store_is_silent() {
        let mut store = PerfModelStore::new();
        store.observe("a", 2, 10.0, 10.5).unwrap(); // 5% off: below threshold
        let report = analyze_model(&store, &graph_ab());
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn divergence_reports_lm330() {
        let mut store = PerfModelStore::new();
        store.observe("a", 2, 10.0, 20.0).unwrap(); // 2x slow
        let report = analyze_model(&store, &graph_ab());
        assert!(report.has_code(codes::MODEL_DIVERGENCE));
        assert!(!report.has_errors());
    }

    #[test]
    fn stale_store_is_an_error() {
        let mut store = PerfModelStore::new();
        store.observe("ghost", 1, 1.0, 2.0).unwrap();
        let report = analyze_model(&store, &graph_ab());
        assert!(report.has_code(codes::STALE_MODEL));
        assert!(report.has_errors());
    }

    #[test]
    fn corrupt_store_is_an_error() {
        // Only deserialization can produce invariant violations.
        let bad = r#"{"tasks":[{"name":"a","widths":[{"width":0,"ratios":[1.0]}]}]}"#;
        assert!(PerfModelStore::from_json(bad).is_err());
        // Force one through serde directly to exercise the lint.
        let store: PerfModelStore = serde_json::from_str(bad).unwrap();
        let report = analyze_model(&store, &graph_ab());
        assert!(report.has_code(codes::INCONSISTENT_MODEL));
        assert!(report.has_errors());
    }
}
