//! Small hand-built graphs for examples, tests and documentation.

use locmps_speedup::{ExecutionProfile, SpeedupModel};
use locmps_taskgraph::{TaskGraph, TaskId};

/// A linear chain of `n` tasks with the given per-task work and edge
/// volume.
pub fn chain(n: usize, work: f64, volume: f64) -> TaskGraph {
    assert!(n >= 1);
    let mut g = TaskGraph::new();
    let mut prev: Option<TaskId> = None;
    for i in 0..n {
        let t = g.add_task(format!("c{i}"), ExecutionProfile::linear(work));
        if let Some(p) = prev {
            g.add_edge(p, t, volume).unwrap();
        }
        prev = Some(t);
    }
    g
}

/// A fork-join: `source → n parallel branches → sink`.
pub fn fork_join(n: usize, branch_work: f64, volume: f64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let src = g.add_task("fork", ExecutionProfile::linear(1.0));
    let sink_profile = ExecutionProfile::linear(1.0);
    let branches: Vec<TaskId> = (0..n)
        .map(|i| g.add_task(format!("b{i}"), ExecutionProfile::linear(branch_work)))
        .collect();
    let sink = g.add_task("join", sink_profile);
    for b in branches {
        g.add_edge(src, b, volume).unwrap();
        g.add_edge(b, sink, volume).unwrap();
    }
    g
}

/// `n` fully independent tasks with Amdahl speedup (serial fraction `f`).
pub fn independent(n: usize, work: f64, serial_fraction: f64) -> TaskGraph {
    let model = SpeedupModel::amdahl(serial_fraction).expect("valid fraction");
    let mut g = TaskGraph::new();
    for i in 0..n {
        g.add_task(
            format!("i{i}"),
            ExecutionProfile::new(work, model.clone()).unwrap(),
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_taskgraph::GraphStats;

    #[test]
    fn shapes() {
        let c = chain(5, 10.0, 1.0);
        assert_eq!(GraphStats::compute(&c).depth, 5);
        let f = fork_join(4, 3.0, 2.0);
        assert_eq!(f.n_tasks(), 6);
        assert_eq!(GraphStats::compute(&f).width, 4);
        let ind = independent(3, 7.0, 0.5);
        assert_eq!(ind.n_edges(), 0);
        for g in [&c, &f, &ind] {
            g.validate().unwrap();
        }
    }
}
