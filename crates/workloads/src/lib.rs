//! Workloads of the paper's evaluation (§IV): synthetic task graphs and
//! the two application task graphs (TCE CCSD-T1 and Strassen matrix
//! multiplication), plus small toy graphs for tests and examples.
//!
//! All generators are seeded and deterministic, so every figure of the
//! reproduction is exactly re-runnable.
#![deny(missing_docs)]

pub mod strassen;
pub mod synthetic;
pub mod tce;
pub mod toys;

pub use strassen::{strassen_graph, StrassenConfig};
pub use synthetic::{synthetic_graph, synthetic_suite, SyntheticConfig};
pub use tce::{ccsd_t1_graph, TceConfig};
