//! TGFF-like synthetic task graphs (§IV.A).
//!
//! The paper generates 30 graphs with a DAG generation tool [14] (TGFF):
//! 10–50 tasks, average in/out degree 4, uniprocessor times uniform with
//! mean 30, Downey speedups with `A ~ U[1, A_max]` and fixed `σ`, and edge
//! communication costs uniform with mean `30 · CCR` (data volume = cost ×
//! network bandwidth). TGFF itself is not redistributable, so this module
//! implements a seeded random-DAG generator with exactly those statistical
//! controls (see DESIGN.md §2).

use locmps_speedup::{DowneyParams, ExecutionProfile, SpeedupModel};
use locmps_taskgraph::{TaskGraph, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator, defaulted to the paper's values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of tasks (paper: 10–50).
    pub n_tasks: usize,
    /// Target average in-degree (== average out-degree; paper: 4).
    pub avg_degree: f64,
    /// Mean uniprocessor execution time (paper: 30 s); times are drawn
    /// uniformly from `[mean/3, 5·mean/3]`.
    pub mean_work: f64,
    /// Communication-to-computation ratio (paper: 0, 0.1, 1): mean edge
    /// communication cost is `mean_work · ccr` for the one-processor
    /// instance of the graph.
    pub ccr: f64,
    /// Upper bound of the average-parallelism draw `A ~ U[1, a_max]`
    /// (paper: 64 or 48).
    pub a_max: f64,
    /// Downey variance parameter (paper: 1 or 2).
    pub sigma: f64,
    /// Network bandwidth in MB/s used to convert communication cost to
    /// data volume (paper: 100 Mbit/s fast ethernet = 12.5 MB/s).
    pub bandwidth: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_tasks: 30,
            avg_degree: 4.0,
            mean_work: 30.0,
            ccr: 0.0,
            a_max: 64.0,
            sigma: 1.0,
            bandwidth: 12.5,
            seed: 0,
        }
    }
}

/// Generates one synthetic task graph.
pub fn synthetic_graph(cfg: &SyntheticConfig) -> TaskGraph {
    assert!(cfg.n_tasks >= 1, "need at least one task");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = TaskGraph::with_capacity(cfg.n_tasks);

    for i in 0..cfg.n_tasks {
        // Uniform with mean `mean_work`, bounded away from zero.
        let work = rng.gen_range(cfg.mean_work / 3.0..=cfg.mean_work * 5.0 / 3.0);
        let a = rng.gen_range(1.0..=cfg.a_max.max(1.0));
        let model = SpeedupModel::Downey(
            DowneyParams::new(a, cfg.sigma).expect("generator draws valid parameters"),
        );
        g.add_task(format!("t{i}"), ExecutionProfile::new(work, model).unwrap());
    }

    // Random DAG in id order: node j draws its in-degree around
    // `avg_degree` (capped by the number of possible predecessors) and
    // picks that many distinct predecessors uniformly. Average out-degree
    // then matches average in-degree by counting.
    for j in 1..cfg.n_tasks {
        let max_preds = j;
        let mean_d = cfg.avg_degree.min(max_preds as f64);
        // Integer draw in [0, 2·mean]: mean ≈ avg_degree; always ≥ 1 for
        // non-root layers so the graph stays connected-ish.
        let d = rng.gen_range(0.0..=2.0 * mean_d).round().max(1.0) as usize;
        let d = d.min(max_preds);
        let mut preds: Vec<usize> = (0..j).collect();
        for k in 0..d {
            let pick = rng.gen_range(k..preds.len());
            preds.swap(k, pick);
        }
        for &p in preds.iter().take(d) {
            let comm_cost = if cfg.ccr > 0.0 {
                rng.gen_range(0.0..=2.0 * cfg.mean_work * cfg.ccr)
            } else {
                0.0
            };
            let volume = comm_cost * cfg.bandwidth;
            g.add_edge(TaskId(p as u32), TaskId(j as u32), volume)
                .expect("generator produces unique forward edges");
        }
    }
    g
}

/// The paper's 30-graph suite for one `(ccr, a_max, sigma)` setting, with
/// task counts cycling through 10–50 as in §IV.A.
pub fn synthetic_suite(ccr: f64, a_max: f64, sigma: f64, base_seed: u64) -> Vec<TaskGraph> {
    (0..30)
        .map(|i| {
            let cfg = SyntheticConfig {
                n_tasks: 10 + (i * 40) / 29, // 10 ..= 50 across the suite
                ccr,
                a_max,
                sigma,
                seed: base_seed.wrapping_add(i as u64 * 7919),
                ..SyntheticConfig::default()
            };
            synthetic_graph(&cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_taskgraph::GraphStats;

    #[test]
    fn generates_valid_dags_of_requested_size() {
        for n in [1, 10, 30, 50] {
            let g = synthetic_graph(&SyntheticConfig {
                n_tasks: n,
                seed: 3,
                ..Default::default()
            });
            assert_eq!(g.n_tasks(), n);
            g.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig {
            n_tasks: 25,
            ccr: 0.5,
            seed: 11,
            ..Default::default()
        };
        assert_eq!(synthetic_graph(&cfg), synthetic_graph(&cfg));
        let other = SyntheticConfig { seed: 12, ..cfg };
        assert_ne!(synthetic_graph(&cfg), synthetic_graph(&other));
    }

    #[test]
    fn work_distribution_matches_mean() {
        let g = synthetic_graph(&SyntheticConfig {
            n_tasks: 50,
            seed: 5,
            ..Default::default()
        });
        let stats = GraphStats::compute(&g);
        let mean = stats.total_work / 50.0;
        assert!(
            (mean - 30.0).abs() < 6.0,
            "mean work {mean} too far from 30"
        );
        for (_, t) in g.tasks() {
            assert!(t.profile.seq_time() >= 10.0 && t.profile.seq_time() <= 50.0);
        }
    }

    #[test]
    fn ccr_zero_means_no_volume() {
        let g = synthetic_graph(&SyntheticConfig {
            n_tasks: 20,
            ccr: 0.0,
            seed: 2,
            ..Default::default()
        });
        assert!(g.edges().all(|(_, e)| e.volume == 0.0));
    }

    #[test]
    fn measured_ccr_tracks_requested() {
        for req in [0.1, 1.0] {
            let mut acc = 0.0;
            for seed in 0..8 {
                let g = synthetic_graph(&SyntheticConfig {
                    n_tasks: 40,
                    ccr: req,
                    seed,
                    ..Default::default()
                });
                acc += GraphStats::compute(&g).ccr(12.5);
            }
            let measured = acc / 8.0;
            assert!(
                (measured - req).abs() < 0.35 * req,
                "requested CCR {req}, measured {measured}"
            );
        }
    }

    #[test]
    fn average_degree_near_four() {
        let mut acc = 0.0;
        for seed in 0..8 {
            let g = synthetic_graph(&SyntheticConfig {
                n_tasks: 50,
                seed,
                ..Default::default()
            });
            acc += g.n_edges() as f64 / 50.0;
        }
        let avg = acc / 8.0;
        assert!((2.0..=5.0).contains(&avg), "avg degree {avg} not near 4");
    }

    #[test]
    fn suite_has_thirty_graphs_spanning_sizes() {
        let suite = synthetic_suite(0.1, 64.0, 1.0, 99);
        assert_eq!(suite.len(), 30);
        assert_eq!(suite.first().unwrap().n_tasks(), 10);
        assert_eq!(suite.last().unwrap().n_tasks(), 50);
        for g in &suite {
            g.validate().unwrap();
        }
    }
}
