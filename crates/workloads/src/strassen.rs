//! The Strassen matrix-multiplication task graph (§IV.B, Fig. 7(b)).
//!
//! One level of Strassen's algorithm on an `n × n` multiply:
//!
//! * 10 submatrix additions (`S1..S10`) over `m = n/2` blocks,
//! * 7 block multiplications (`M1..M7`), each consuming one or two `S`
//!   results (multiplications with a raw `A`/`B` operand have fewer
//!   in-edges),
//! * 4 output assemblies (`C11, C12, C21, C22`) combining the `M` results.
//!
//! With `levels > 1` each block multiplication expands recursively into its
//! own Strassen sub-graph — an implemented extension beyond the paper's
//! one-level evaluation.
//!
//! Costs: multiplications are compute-bound (`2 m³` flops), additions are
//! memory-bound (`3 m²` doubles moved); edge volumes are `m²` doubles.
//! Scalability follows a surface-to-volume heuristic (parallel
//! matrix kernels scale with the block dimension): multiplications get
//! Downey `A = m/32`, additions `A = m/256` — at 1024² the tasks "do not
//! scale very well" and at 4096² they do, matching the paper's narrative
//! for Figure 9 (see DESIGN.md §2 for the profiling substitution).

use locmps_speedup::{DowneyParams, ExecutionProfile, SpeedupModel};
use locmps_taskgraph::{TaskGraph, TaskId};

/// Strassen workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrassenConfig {
    /// Matrix dimension `n` (paper: 1024 and 4096).
    pub n: usize,
    /// Levels of Strassen recursion expanded into tasks (paper: 1).
    pub levels: usize,
    /// Sustained node compute rate in flop/s.
    pub flops_per_sec: f64,
    /// Sustained node memory bandwidth in B/s.
    pub mem_bw: f64,
}

impl Default for StrassenConfig {
    fn default() -> Self {
        Self {
            n: 1024,
            levels: 1,
            flops_per_sec: 4.0e9,
            mem_bw: 5.0e9,
        }
    }
}

impl StrassenConfig {
    fn add_profile(&self, m: usize) -> ExecutionProfile {
        let time = (3.0 * (m * m) as f64 * 8.0 / self.mem_bw).max(1e-6);
        let a = ((m as f64) / 256.0).max(1.0);
        let model = SpeedupModel::Downey(DowneyParams::new(a, 2.0).unwrap());
        ExecutionProfile::new(time, model).unwrap()
    }

    fn mult_profile(&self, m: usize) -> ExecutionProfile {
        let time = (2.0 * (m as f64).powi(3) / self.flops_per_sec).max(1e-6);
        let a = ((m as f64) / 32.0).max(1.0);
        let model = SpeedupModel::Downey(DowneyParams::new(a, 1.0).unwrap());
        ExecutionProfile::new(time, model).unwrap()
    }

    fn block_volume_mb(m: usize) -> f64 {
        (m * m) as f64 * 8.0 / 1.0e6
    }
}

/// Builds the Strassen task graph; returns the graph and the four output
/// assembly tasks.
pub fn strassen_graph(cfg: &StrassenConfig) -> TaskGraph {
    assert!(cfg.levels >= 1, "at least one level of Strassen");
    assert!(
        cfg.n.is_multiple_of(1 << cfg.levels),
        "n must be divisible by 2^levels"
    );
    let mut g = TaskGraph::new();
    build_level(&mut g, cfg, cfg.n / 2, cfg.levels, "", &[]);
    g
}

/// Recursively builds one Strassen level over `m × m` blocks. `deps` are
/// producer tasks of this level's input operands (empty at the top level,
/// where the inputs are the resident `A`/`B` matrices).
///
/// Returns the tasks producing the four output blocks.
fn build_level(
    g: &mut TaskGraph,
    cfg: &StrassenConfig,
    m: usize,
    levels: usize,
    prefix: &str,
    deps: &[TaskId],
) -> [TaskId; 4] {
    let vol = StrassenConfig::block_volume_mb(m);
    let add = |g: &mut TaskGraph, name: String, parents: &[TaskId]| -> TaskId {
        let t = g.add_task(name, cfg.add_profile(m));
        for &p in parents {
            g.add_edge(p, t, vol).unwrap();
        }
        t
    };

    // Operand sums. At inner levels every S depends on the producers of
    // this level's operands (`deps`); at the top level operands are inputs.
    let s: Vec<TaskId> = (1..=10)
        .map(|i| add(g, format!("{prefix}S{i}"), deps))
        .collect();

    // Which S tasks feed each multiplication (None = raw operand).
    let m_inputs: [(&str, Vec<TaskId>); 7] = [
        ("M1", vec![s[0], s[1]]), // (A11+A22)(B11+B22)
        ("M2", vec![s[2]]),       // (A21+A22)·B11
        ("M3", vec![s[3]]),       // A11·(B12−B22)
        ("M4", vec![s[4]]),       // A22·(B21−B11)
        ("M5", vec![s[5]]),       // (A11+A12)·B22
        ("M6", vec![s[6], s[7]]), // (A21−A11)(B11+B12)
        ("M7", vec![s[8], s[9]]), // (A12−A22)(B21+B22)
    ];
    let mut mults = Vec::with_capacity(7);
    for (name, parents) in m_inputs {
        if levels > 1 {
            // Expand this multiplication into a nested Strassen graph whose
            // inputs come from the parent S tasks; its result is the sum of
            // its own four C blocks, folded into one assembly task.
            let sub = build_level(
                g,
                cfg,
                m / 2,
                levels - 1,
                &format!("{prefix}{name}."),
                &parents,
            );
            let fold = g.add_task(format!("{prefix}{name}"), cfg.add_profile(m));
            for c in sub {
                g.add_edge(c, fold, StrassenConfig::block_volume_mb(m / 2))
                    .unwrap();
            }
            mults.push(fold);
        } else {
            let t = g.add_task(format!("{prefix}{name}"), cfg.mult_profile(m));
            for p in parents {
                g.add_edge(p, t, vol).unwrap();
            }
            mults.push(t);
        }
    }

    // Output assemblies.
    let c11 = add(
        g,
        format!("{prefix}C11"),
        &[mults[0], mults[3], mults[4], mults[6]],
    );
    let c12 = add(g, format!("{prefix}C12"), &[mults[2], mults[4]]);
    let c21 = add(g, format!("{prefix}C21"), &[mults[1], mults[3]]);
    let c22 = add(
        g,
        format!("{prefix}C22"),
        &[mults[0], mults[1], mults[2], mults[5]],
    );
    [c11, c12, c21, c22]
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_taskgraph::GraphStats;

    #[test]
    fn one_level_shape() {
        let g = strassen_graph(&StrassenConfig::default());
        g.validate().unwrap();
        assert_eq!(g.n_tasks(), 21, "10 S + 7 M + 4 C");
        // 10 S->M edges + 12 M->C edges (S tasks have no producers at the
        // top level: operands are resident inputs).
        assert_eq!(g.n_edges(), 22);
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.depth, 3);
    }

    #[test]
    fn multiplications_dominate_and_scale() {
        let cfg = StrassenConfig {
            n: 4096,
            ..Default::default()
        };
        let g = strassen_graph(&cfg);
        let (mult_t, add_t): (Vec<f64>, Vec<f64>) = {
            let m: Vec<f64> = g
                .tasks()
                .filter(|(_, t)| t.name.starts_with('M'))
                .map(|(_, t)| t.profile.seq_time())
                .collect();
            let a: Vec<f64> = g
                .tasks()
                .filter(|(_, t)| t.name.starts_with('S'))
                .map(|(_, t)| t.profile.seq_time())
                .collect();
            (m, a)
        };
        assert!(
            mult_t.iter().cloned().fold(f64::MAX, f64::min)
                > 100.0 * add_t.iter().cloned().fold(0.0, f64::max)
        );
        let (_, m1) = g.tasks().find(|(_, t)| t.name == "M1").unwrap();
        assert!(m1.profile.speedup(64) > 30.0, "4096-block mults scale well");
    }

    #[test]
    fn small_problem_scales_worse_than_large() {
        let small = strassen_graph(&StrassenConfig {
            n: 1024,
            ..Default::default()
        });
        let large = strassen_graph(&StrassenConfig {
            n: 4096,
            ..Default::default()
        });
        let speedup_at = |g: &TaskGraph, p: usize| {
            let (_, t) = g.tasks().find(|(_, t)| t.name == "M1").unwrap();
            t.profile.speedup(p)
        };
        assert!(speedup_at(&large, 128) > 2.0 * speedup_at(&small, 128));
    }

    #[test]
    fn two_levels_expand_multiplications() {
        let cfg = StrassenConfig {
            n: 1024,
            levels: 2,
            ..Default::default()
        };
        let g = strassen_graph(&cfg);
        g.validate().unwrap();
        // Top level: 10 S + 4 C + 7 folds; each fold hides a 21-task
        // sub-graph: 10 S + 7 M + 4 C.
        assert_eq!(g.n_tasks(), 10 + 4 + 7 * (1 + 21));
        // Inner S tasks must depend on the outer S producers.
        let (inner_s, _) = g.tasks().find(|(_, t)| t.name == "M1.S1").unwrap();
        assert_eq!(g.in_degree(inner_s), 2, "M1's operands come from S1 and S2");
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_sizes() {
        strassen_graph(&StrassenConfig {
            n: 1000,
            levels: 4,
            ..Default::default()
        });
    }
}
