//! The Tensor Contraction Engine CCSD-T1 task graph (§IV.B, Fig. 7(a)).
//!
//! The paper evaluates the coupled-cluster singles amplitude (T1) residual
//! computation: "each vertex represents a tensor contraction of two input
//! tensors to generate a result tensor", intermediate results are
//! "accumulated to form a partial product", so most vertices have a single
//! incident edge and accumulation vertices have several.
//!
//! Figure 7(a) is an image, not machine-readable, so this module rebuilds a
//! representative CCSD T1 residual DAG from the public structure of the T1
//! amplitude equation: the one- and two-electron contractions producing the
//! `[o,v]` residual, the chained `t1`-dressed intermediates, and the
//! accumulation chain. Costs are flop counts of each contraction over `o`
//! occupied and `v` virtual orbitals at a given flop rate; edge volumes are
//! the byte sizes of the tensors flowing between contractions. Scalability
//! follows the paper's qualitative description ("a few large tasks and many
//! small tasks which are not scalable"): Downey average parallelism grows
//! with task size (see DESIGN.md §2 for the substitution note).

use locmps_speedup::{DowneyParams, ExecutionProfile, SpeedupModel};
use locmps_taskgraph::{TaskGraph, TaskId};

/// Problem-size parameters for the CCSD-T1 graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TceConfig {
    /// Occupied orbitals `o`.
    pub n_occ: usize,
    /// Virtual orbitals `v`.
    pub n_virt: usize,
    /// Sustained node compute rate in flop/s.
    pub flops_per_sec: f64,
    /// Sustained node memory bandwidth in B/s (accumulations are
    /// memory-bound).
    pub mem_bw: f64,
}

impl Default for TceConfig {
    fn default() -> Self {
        // A mid-size correlated calculation on one early-2000s node.
        Self {
            n_occ: 60,
            n_virt: 300,
            flops_per_sec: 4.0e9,
            mem_bw: 5.0e9,
        }
    }
}

impl TceConfig {
    fn contraction_time(&self, flops: f64) -> f64 {
        (flops / self.flops_per_sec).max(1e-6)
    }

    fn accumulation_time(&self, elements: f64) -> f64 {
        // Read two operands, write one result.
        (3.0 * elements * 8.0 / self.mem_bw).max(1e-6)
    }

    /// Tensor size in MB for `elements` doubles.
    fn volume_mb(elements: f64) -> f64 {
        elements * 8.0 / 1.0e6
    }

    /// Scalability heuristic: average parallelism grows with the cube root
    /// of the work, so the handful of `o²v³`-class contractions scale to
    /// large groups while the small terms saturate at a few processors.
    fn downey_for(&self, flops: f64) -> DowneyParams {
        let a = (flops.cbrt() / 100.0).clamp(1.0, 512.0);
        let sigma = if a >= 16.0 { 1.0 } else { 2.0 };
        DowneyParams::new(a, sigma).expect("heuristic stays in range")
    }
}

/// Builds the representative CCSD T1 residual task graph.
///
/// Returns the graph; task names encode their role (`I*` dressed
/// intermediates, `C*` contractions into the residual, `ACC*` accumulation
/// chain).
pub fn ccsd_t1_graph(cfg: &TceConfig) -> TaskGraph {
    let o = cfg.n_occ as f64;
    let v = cfg.n_virt as f64;
    let mut g = TaskGraph::new();

    let contraction = |g: &mut TaskGraph, name: &str, flops: f64| -> TaskId {
        let time = cfg.contraction_time(flops);
        let model = SpeedupModel::Downey(cfg.downey_for(flops));
        g.add_task(name, ExecutionProfile::new(time, model).unwrap())
    };

    // --- t1-dressed intermediates (consume only input tensors). ---
    // I_ov[k,c]   = v[k,l,c,d] · t1[d,l]          : 2 o²v² flops
    let i_ov = contraction(&mut g, "I_ov", 2.0 * o * o * v * v);
    // I_oo[k,i]   = v[k,l,i,c] · t1[c,l]          : 2 o³v
    let i_oo = contraction(&mut g, "I_oo", 2.0 * o * o * o * v);
    // I_vv[a,c]   = v[k,a,c,d] · t1[d,k]          : 2 o v³
    let i_vv = contraction(&mut g, "I_vv", 2.0 * o * v * v * v);
    // I2_oo[k,i]  = I_ov[k,c] · t1[c,i]           : 2 o²v   (chained)
    let i2_oo = contraction(&mut g, "I2_oo", 2.0 * o * o * v);
    g.add_edge(i_ov, i2_oo, TceConfig::volume_mb(o * v))
        .unwrap();

    // --- contractions producing [o,v] residual pieces. ---
    // C_fvv  = f[a,c] · t1[c,i]                   : 2 o v²
    let c_fvv = contraction(&mut g, "C_fvv", 2.0 * o * v * v);
    // C_foo  = f[k,i] · t1[a,k]                   : 2 o² v
    let c_foo = contraction(&mut g, "C_foo", 2.0 * o * o * v);
    // C_fov  = f[k,c] · t2[a,c,i,k]               : 2 o²v²
    let c_fov = contraction(&mut g, "C_fov", 2.0 * o * o * v * v);
    // C_iovt2 = I_ov[k,c] · t2[a,c,i,k]           : 2 o²v²  (chained)
    let c_iovt2 = contraction(&mut g, "C_Iov_t2", 2.0 * o * o * v * v);
    g.add_edge(i_ov, c_iovt2, TceConfig::volume_mb(o * v))
        .unwrap();
    // C_w    = v[k,a,i,c] · t1[c,k]               : 2 o²v²
    let c_w = contraction(&mut g, "C_w", 2.0 * o * o * v * v);
    // C_vvvv-class: v[k,a,c,d] · t2[c,d,i,k]      : 2 o²v³  (the big one)
    let c_big1 = contraction(&mut g, "C_ovvv_t2", 2.0 * o * o * v * v * v);
    // C_ooov-class: v[k,l,i,c] · t2[a,c,k,l]      : 2 o³v²
    let c_big2 = contraction(&mut g, "C_ooov_t2", 2.0 * o * o * o * v * v);
    // C_ioo  = I_oo[k,i] · t1[a,k]                : 2 o²v   (chained)
    let c_ioo = contraction(&mut g, "C_Ioo_t1", 2.0 * o * o * v);
    g.add_edge(i_oo, c_ioo, TceConfig::volume_mb(o * o))
        .unwrap();
    // C_ivv  = I_vv[a,c] · t1[c,i]                : 2 o v²  (chained)
    let c_ivv = contraction(&mut g, "C_Ivv_t1", 2.0 * o * v * v);
    g.add_edge(i_vv, c_ivv, TceConfig::volume_mb(v * v))
        .unwrap();
    // C_i2oo = I2_oo[k,i] · t1[a,k]               : 2 o²v   (doubly chained)
    let c_i2oo = contraction(&mut g, "C_I2oo_t1", 2.0 * o * o * v);
    g.add_edge(i2_oo, c_i2oo, TceConfig::volume_mb(o * o))
        .unwrap();

    // --- the accumulation chain over the [o,v] residual. ---
    let residual_elems = o * v;
    let pieces = [
        c_fvv, c_foo, c_fov, c_iovt2, c_w, c_big1, c_big2, c_ioo, c_ivv, c_i2oo,
    ];
    let acc_model = SpeedupModel::Downey(DowneyParams::new(1.5, 2.0).unwrap());
    let mut prev = pieces[0];
    for (idx, &piece) in pieces.iter().enumerate().skip(1) {
        let acc = g.add_task(
            format!("ACC{idx}"),
            ExecutionProfile::new(cfg.accumulation_time(residual_elems), acc_model.clone())
                .unwrap(),
        );
        // Partial product + the next contraction result: two in-edges.
        g.add_edge(prev, acc, TceConfig::volume_mb(residual_elems))
            .unwrap();
        g.add_edge(piece, acc, TceConfig::volume_mb(residual_elems))
            .unwrap();
        prev = acc;
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_taskgraph::GraphStats;

    #[test]
    fn builds_a_valid_dag() {
        let g = ccsd_t1_graph(&TceConfig::default());
        g.validate().unwrap();
        // 4 intermediates + 10 contractions + 9 accumulations.
        assert_eq!(g.n_tasks(), 23);
        let stats = GraphStats::compute(&g);
        assert!(stats.depth >= 10, "accumulation chain dominates the depth");
    }

    #[test]
    fn few_large_many_small() {
        let g = ccsd_t1_graph(&TceConfig::default());
        let mut times: Vec<f64> = g.tasks().map(|(_, t)| t.profile.seq_time()).collect();
        times.sort_by(|a, b| b.total_cmp(a));
        // The two `v[*,*,*,*]·t2` contractions dwarf everything else.
        assert!(
            times[0] > 10.0 * times[2],
            "expected a dominant pair: {times:?}"
        );
        // ... and the majority of tasks are tiny.
        let small = times.iter().filter(|&&t| t < times[0] / 100.0).count();
        assert!(small * 2 > times.len(), "{small} of {} small", times.len());
    }

    #[test]
    fn big_tasks_scale_small_tasks_do_not() {
        let g = ccsd_t1_graph(&TceConfig::default());
        let (_, big) = g
            .tasks()
            .max_by(|a, b| a.1.profile.seq_time().total_cmp(&b.1.profile.seq_time()))
            .unwrap();
        assert!(
            big.profile.speedup(64) > 30.0,
            "dominant contraction must scale"
        );
        let (_, acc) = g.tasks().find(|(_, t)| t.name.starts_with("ACC")).unwrap();
        assert!(
            acc.profile.speedup(64) < 2.0,
            "accumulations must not scale"
        );
    }

    #[test]
    fn accumulators_have_two_in_edges_contractions_at_most_one() {
        let g = ccsd_t1_graph(&TceConfig::default());
        for (id, t) in g.tasks() {
            if t.name.starts_with("ACC") {
                assert_eq!(g.in_degree(id), 2, "{}", t.name);
            } else {
                assert!(g.in_degree(id) <= 1, "{}", t.name);
            }
        }
    }

    #[test]
    fn problem_size_scales_work() {
        let small = ccsd_t1_graph(&TceConfig {
            n_occ: 20,
            n_virt: 100,
            ..Default::default()
        });
        let large = ccsd_t1_graph(&TceConfig {
            n_occ: 40,
            n_virt: 200,
            ..Default::default()
        });
        let w = |g: &TaskGraph| GraphStats::compute(g).total_work;
        assert!(w(&large) > 10.0 * w(&small));
    }
}
