//! The communication-cost model of §III.B–D.
//!
//! Two views of the same edge are needed at different times:
//!
//! * during *candidate selection* (Algorithm 1), only the allocation is
//!   known, so the paper estimates
//!   `wt(e) = d / (min(np(src), np(dst)) · bandwidth)` — the
//!   [`CommModel::edge_estimate`];
//! * during *placement* (Algorithm 2), the concrete processor sets are
//!   known, so the redistribution completion time uses the exact
//!   block-cyclic volume matrix and the single-port transfer bound — the
//!   [`CommModel::transfer_time`].
//!
//! Setting `comm_aware = false` zeroes both views: the scheduler then plans
//! as if redistribution were free, which is exactly the **iCASLB** baseline
//! (the authors' prior work that this paper extends); its schedules are
//! later *evaluated* under the true model by `locmps-sim`, reproducing the
//! degradation shown in Figure 5.

use locmps_platform::{aggregate_edge_cost, redistribution_time, Cluster, ProcSet};
use locmps_taskgraph::{EdgeId, TaskGraph};

use crate::allocation::Allocation;

/// Communication-cost oracle shared by the planner and the placer.
#[derive(Debug, Clone, Copy)]
pub struct CommModel<'a> {
    cluster: &'a Cluster,
    comm_aware: bool,
}

impl<'a> CommModel<'a> {
    /// The true model on the given cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        Self {
            cluster,
            comm_aware: true,
        }
    }

    /// The communication-blind model (iCASLB planning view).
    pub fn blind(cluster: &'a Cluster) -> Self {
        Self {
            cluster,
            comm_aware: false,
        }
    }

    /// Whether this model accounts for communication at all.
    pub fn is_comm_aware(&self) -> bool {
        self.comm_aware
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Planning estimate of an edge's redistribution cost under an
    /// allocation (§III.B): `d / (min(np_i, np_j) · bw)`.
    pub fn edge_estimate(&self, g: &TaskGraph, alloc: &Allocation, e: EdgeId) -> f64 {
        if !self.comm_aware {
            return 0.0;
        }
        let edge = g.edge(e);
        aggregate_edge_cost(
            edge.volume,
            alloc.np(edge.src),
            alloc.np(edge.dst),
            self.cluster.bandwidth,
        )
    }

    /// [`CommModel::edge_estimate`] through a memo: recomputes only when
    /// the cached entry's processor counts no longer match the allocation.
    pub fn edge_estimate_cached(
        &self,
        g: &TaskGraph,
        alloc: &Allocation,
        e: EdgeId,
        cache: &mut EstimateCache,
    ) -> f64 {
        let edge = g.edge(e);
        let (np_src, np_dst) = (alloc.np(edge.src), alloc.np(edge.dst));
        let slot = &mut cache.entries[e.index()];
        if slot.0 as usize != np_src || slot.1 as usize != np_dst {
            let value = if self.comm_aware {
                aggregate_edge_cost(edge.volume, np_src, np_dst, self.cluster.bandwidth)
            } else {
                0.0
            };
            *slot = (np_src as u32, np_dst as u32, value);
        }
        slot.2
    }

    /// Exact single-port transfer time of `volume` MB between the two
    /// concrete block-cyclic groups.
    pub fn transfer_time(&self, src: &ProcSet, dst: &ProcSet, volume: f64) -> f64 {
        if !self.comm_aware {
            return 0.0;
        }
        redistribution_time(src, dst, volume, self.cluster.bandwidth)
    }
}

/// Per-edge memo for [`CommModel::edge_estimate_cached`], keyed by the
/// `(np(src), np(dst))` pair the value was computed under.
///
/// The estimate depends only on the edge's (immutable) volume and the two
/// endpoint widths, so tag-mismatch checking *is* the invalidation rule:
/// when LoC-MPS widens one task, exactly that task's incident edges see a
/// stale tag and recompute — every other cached estimate stays valid across
/// refinement iterations. Tags start at 0, which no valid allocation uses
/// (`np >= 1`), so fresh entries always miss.
#[derive(Debug, Clone, Default)]
pub struct EstimateCache {
    entries: Vec<(u32, u32, f64)>,
}

impl EstimateCache {
    /// An empty cache; sized on first [`EstimateCache::reset_for`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidates everything and sizes the memo for `g`'s edges (data and
    /// pseudo); call when switching graphs or restarting an iteration whose
    /// allocation history is unknown.
    pub fn reset_for(&mut self, g: &TaskGraph) {
        self.entries.clear();
        self.entries.resize(g.n_edges(), (0, 0, 0.0));
    }

    /// Grows the memo to cover edges appended since the last reset (pseudo
    /// edges added mid-run), without dropping valid entries.
    pub fn grow_for(&mut self, g: &TaskGraph) {
        if g.n_edges() > self.entries.len() {
            self.entries.resize(g.n_edges(), (0, 0, 0.0));
        }
    }

    /// Whether no entry holds a cached value (all width tags are the
    /// never-valid 0): the state [`EstimateCache::reset_for`] guarantees.
    pub fn is_clear(&self) -> bool {
        self.entries
            .iter()
            .all(|&(src, dst, _)| src == 0 && dst == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_speedup::ExecutionProfile;
    use locmps_taskgraph::TaskGraph;

    fn edge_graph(volume: f64) -> (TaskGraph, EdgeId) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(1.0));
        let b = g.add_task("b", ExecutionProfile::linear(1.0));
        let e = g.add_edge(a, b, volume).unwrap();
        (g, e)
    }

    #[test]
    fn estimate_follows_the_paper_formula() {
        let cluster = Cluster::new(8, 12.5);
        let model = CommModel::new(&cluster);
        let (g, e) = edge_graph(100.0);
        let alloc = Allocation::from_vec(vec![4, 2]);
        assert!((model.edge_estimate(&g, &alloc, e) - 100.0 / (2.0 * 12.5)).abs() < 1e-12);
    }

    #[test]
    fn blind_model_is_free() {
        let cluster = Cluster::new(8, 12.5);
        let model = CommModel::blind(&cluster);
        let (g, e) = edge_graph(100.0);
        let alloc = Allocation::ones(2);
        assert_eq!(model.edge_estimate(&g, &alloc, e), 0.0);
        let a: ProcSet = [0u32].into_iter().collect();
        let b: ProcSet = [1u32].into_iter().collect();
        assert_eq!(model.transfer_time(&a, &b, 100.0), 0.0);
        assert!(!model.is_comm_aware());
    }

    #[test]
    fn cache_tracks_allocation_changes() {
        let cluster = Cluster::new(8, 12.5);
        let model = CommModel::new(&cluster);
        let (g, e) = edge_graph(100.0);
        let mut cache = EstimateCache::new();
        cache.reset_for(&g);
        let mut alloc = Allocation::from_vec(vec![4, 2]);
        let direct = model.edge_estimate(&g, &alloc, e);
        assert_eq!(
            model.edge_estimate_cached(&g, &alloc, e, &mut cache),
            direct
        );
        // Hit: same widths, same value.
        assert_eq!(
            model.edge_estimate_cached(&g, &alloc, e, &mut cache),
            direct
        );
        // Widening an endpoint invalidates the entry by tag mismatch.
        alloc.set(g.edge(e).dst, 4);
        let widened = model.edge_estimate(&g, &alloc, e);
        assert_ne!(widened, direct);
        assert_eq!(
            model.edge_estimate_cached(&g, &alloc, e, &mut cache),
            widened
        );
        // The blind model caches zeros just as consistently.
        let blind = CommModel::blind(&cluster);
        cache.reset_for(&g);
        assert_eq!(blind.edge_estimate_cached(&g, &alloc, e, &mut cache), 0.0);
    }

    #[test]
    fn transfer_time_uses_exact_layout() {
        let cluster = Cluster::new(8, 10.0);
        let model = CommModel::new(&cluster);
        let a: ProcSet = [0u32].into_iter().collect();
        let same = model.transfer_time(&a, &a, 500.0);
        assert_eq!(same, 0.0, "same layout means no transfer");
        let b: ProcSet = [1u32].into_iter().collect();
        assert!((model.transfer_time(&a, &b, 500.0) - 50.0).abs() < 1e-9);
    }
}
