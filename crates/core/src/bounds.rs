//! Simple makespan lower bounds.
//!
//! No heuristic can beat these; the test-suite uses them as oracles for
//! every scheduler, and the experiment reports print them for context.

use locmps_taskgraph::{TaskGraph, TaskId};

/// Critical-path lower bound: the longest path where every task takes its
/// best possible time over `1..=p` processors and communication is free.
pub fn critical_path_bound(g: &TaskGraph, p: usize) -> f64 {
    let best_time = |t: TaskId| {
        let prof = &g.task(t).profile;
        prof.time(prof.pbest(p))
    };
    g.critical_path(best_time, |_| 0.0).length
}

/// Area lower bound: total work cannot be processed faster than `P`
/// processors allow. Work is minimized at one processor for non-increasing
/// efficiency, but a task never takes less area than `et(t,1)·1`... in
/// general the minimum area over allocations bounds the makespan:
/// `max_t min_p (p·et(t,p)) / P` summed over tasks.
pub fn area_bound(g: &TaskGraph, p: usize) -> f64 {
    let total: f64 = g
        .task_ids()
        .map(|t| {
            let prof = &g.task(t).profile;
            (1..=p.max(1))
                .map(|n| prof.area(n))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / p.max(1) as f64
}

/// The tighter of the two bounds.
pub fn makespan_lower_bound(g: &TaskGraph, p: usize) -> f64 {
    critical_path_bound(g, p).max(area_bound(g, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_speedup::{ExecutionProfile, SpeedupModel};

    #[test]
    fn chain_cp_bound() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(20.0));
        g.add_edge(a, b, 0.0).unwrap();
        // Linear speedup on 4 procs: 2.5 + 5.0.
        assert!((critical_path_bound(&g, 4) - 7.5).abs() < 1e-12);
        // Area: both tasks have constant area 30; 30/4.
        assert!((area_bound(&g, 4) - 7.5).abs() < 1e-12);
        assert!((makespan_lower_bound(&g, 4) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn area_bound_uses_cheapest_allocation() {
        // Sub-linear speedup: wider is wasteful, so the cheapest area is at
        // one processor.
        let m = SpeedupModel::downey(4.0, 2.0).unwrap();
        let mut g = TaskGraph::new();
        g.add_task("t", ExecutionProfile::new(12.0, m).unwrap());
        assert!((area_bound(&g, 4) - 12.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_bounded_by_area() {
        let mut g = TaskGraph::new();
        for i in 0..8 {
            g.add_task(format!("t{i}"), ExecutionProfile::linear(10.0));
        }
        // 80 units of work on 2 processors: at least 40.
        assert!((area_bound(&g, 2) - 40.0).abs() < 1e-12);
        // CP bound is a single task at its best: 5.
        assert!((critical_path_bound(&g, 2) - 5.0).abs() < 1e-12);
        assert!((makespan_lower_bound(&g, 2) - 40.0).abs() < 1e-12);
    }
}
