//! Makespan lower bounds.
//!
//! Two families live here:
//!
//! * the **graph-level** bounds ([`critical_path_bound`], [`area_bound`]):
//!   valid for *any* allocation, used as oracles by the test-suite and for
//!   context in the experiment reports;
//! * the **allocation-level** bounds ([`allocation_lower_bound`],
//!   [`WideningBounds`]): valid for a *given* allocation — or for the whole
//!   cone of allocations reachable from it by widening — and admissible
//!   against every LoCBS schedule of that allocation. LoC-MPS uses them to
//!   prune look-ahead branches that provably cannot beat the incumbent
//!   makespan (the bound-driven search pruning of Wu & Loiseau and Marchal
//!   et al., adapted to the iterative widening walk).
//!
//! Admissibility of the allocation-level bounds rests on two facts about
//! any valid LoCBS schedule: a task occupies `np(t)` processors for at
//! least `et(t, np(t))` time (area), and along every graph edge the
//! consumer finishes no earlier than `finish(producer) + et(consumer)`
//! (critical path with zero edge weights — transfers and queueing can only
//! add to it). Neither argument involves communication volumes, so the
//! bounds hold under every communication model, overlap regime and
//! backfilling variant alike.

use crate::allocation::Allocation;
use locmps_taskgraph::{TaskGraph, TaskId};

/// Critical-path lower bound: the longest path where every task takes its
/// best possible time over `1..=p` processors and communication is free.
pub fn critical_path_bound(g: &TaskGraph, p: usize) -> f64 {
    let best_time = |t: TaskId| {
        let prof = &g.task(t).profile;
        prof.time(prof.pbest(p))
    };
    g.critical_path(best_time, |_| 0.0).length
}

/// Area lower bound: total work cannot be processed faster than `P`
/// processors allow. Work is minimized at one processor for non-increasing
/// efficiency, but a task never takes less area than `et(t,1)·1`... in
/// general the minimum area over allocations bounds the makespan:
/// `max_t min_p (p·et(t,p)) / P` summed over tasks.
pub fn area_bound(g: &TaskGraph, p: usize) -> f64 {
    let total: f64 = g
        .task_ids()
        .map(|t| {
            let prof = &g.task(t).profile;
            (1..=p.max(1))
                .map(|n| prof.area(n))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / p.max(1) as f64
}

/// The tighter of the two bounds.
pub fn makespan_lower_bound(g: &TaskGraph, p: usize) -> f64 {
    critical_path_bound(g, p).max(area_bound(g, p))
}

/// Admissible lower bound on the makespan of **any** LoCBS schedule of `g`
/// under exactly the allocation `alloc` on `p` processors: the critical
/// path with node weight `et(t, np(t))` and zero edge weights, against the
/// area `Σ np(t)·et(t, np(t)) / p`.
pub fn allocation_lower_bound(g: &TaskGraph, alloc: &Allocation, p: usize) -> f64 {
    let cp = g
        .levels(|t| g.task(t).profile.time(alloc.np(t)), |_| 0.0)
        .cp_length();
    let area = alloc.total_area(g) / p.max(1) as f64;
    cp.max(area)
}

/// Precomputed suffix minima that bound the makespan over a whole
/// **widening cone**: every allocation reachable from a given one by the
/// LoC-MPS refinement moves (which only ever *increase* `np(t)`, clamped
/// at `p`).
///
/// For each task and width `np`, the structure holds
/// `min_{n ∈ [np, p]} et(t, n)` and `min_{n ∈ [np, p]} n·et(t, n)`;
/// [`WideningBounds::cone_bound`] assembles them into the critical-path /
/// area bound in `O(V + E)`. Building costs `O(V·p)` once per graph.
#[derive(Debug, Clone)]
pub struct WideningBounds {
    p: usize,
    /// Row-major `[task][np-1]`: `et(t, np)` verbatim.
    time: Vec<f64>,
    /// Row-major `[task][np-1]`: `np·et(t, np)` verbatim.
    area: Vec<f64>,
    /// Row-major `[task][np-1]`: `min_{n >= np} et(t, n)`.
    min_time: Vec<f64>,
    /// Row-major `[task][np-1]`: `min_{n >= np} n·et(t, n)`.
    min_area: Vec<f64>,
}

impl WideningBounds {
    /// Precomputes the tables for `g` on `p` processors.
    pub fn new(g: &TaskGraph, p: usize) -> Self {
        let p = p.max(1);
        let n_tasks = g.n_tasks();
        let mut time = vec![f64::INFINITY; n_tasks * p];
        let mut area = vec![f64::INFINITY; n_tasks * p];
        let mut min_time = vec![f64::INFINITY; n_tasks * p];
        let mut min_area = vec![f64::INFINITY; n_tasks * p];
        for t in g.task_ids() {
            let prof = &g.task(t).profile;
            let row = t.index() * p;
            let mut best_t = f64::INFINITY;
            let mut best_a = f64::INFINITY;
            for np in (1..=p).rev() {
                let (et, ar) = (prof.time(np), prof.area(np));
                time[row + np - 1] = et;
                area[row + np - 1] = ar;
                best_t = best_t.min(et);
                best_a = best_a.min(ar);
                min_time[row + np - 1] = best_t;
                min_area[row + np - 1] = best_a;
            }
        }
        Self {
            p,
            time,
            area,
            min_time,
            min_area,
        }
    }

    /// The cluster size the minima were computed for.
    pub fn p(&self) -> usize {
        self.p
    }

    #[inline]
    fn idx(&self, t: TaskId, np: usize) -> usize {
        t.index() * self.p + np.clamp(1, self.p) - 1
    }

    /// Admissible lower bound on the makespan of any LoCBS schedule whose
    /// allocation lies in the widening cone of `alloc` (pointwise
    /// `np'(t) ∈ [np(t), p]`): critical path under the per-task suffix-min
    /// execution times (zero edge weights) vs. the suffix-min area.
    pub fn cone_bound(&self, g: &TaskGraph, alloc: &Allocation) -> f64 {
        let cp = g
            .levels(|t| self.min_time[self.idx(t, alloc.np(t))], |_| 0.0)
            .cp_length();
        let area: f64 = g
            .task_ids()
            .map(|t| self.min_area[self.idx(t, alloc.np(t))])
            .sum::<f64>()
            / self.p as f64;
        cp.max(area)
    }

    /// Minimum of `table` over the width window `[np, min(np + d, p)]`.
    #[inline]
    fn window_min(&self, table: &[f64], suffix: &[f64], t: TaskId, np: usize, d: usize) -> f64 {
        let np = np.clamp(1, self.p);
        if np.saturating_add(d) >= self.p {
            return suffix[self.idx(t, np)];
        }
        let row = t.index() * self.p;
        table[row + np - 1..=row + np + d - 1]
            .iter()
            .fold(f64::INFINITY, |m, &v| m.min(v))
    }

    /// [`WideningBounds::cone_bound`] restricted to allocations reachable
    /// with at most `steps` further refinement moves: a move widens any
    /// task by at most one processor, so every reachable width lies in the
    /// per-task window `[np(t), min(np(t) + steps, p)]`. The window makes
    /// the bound far tighter than the full cone early in a walk, and it
    /// tightens further as the remaining depth shrinks.
    pub fn cone_bound_within(&self, g: &TaskGraph, alloc: &Allocation, steps: usize) -> f64 {
        let cp = g
            .levels(
                |t| self.window_min(&self.time, &self.min_time, t, alloc.np(t), steps),
                |_| 0.0,
            )
            .cp_length();
        let area: f64 = g
            .task_ids()
            .map(|t| self.window_min(&self.area, &self.min_area, t, alloc.np(t), steps))
            .sum::<f64>()
            / self.p as f64;
        cp.max(area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_speedup::{ExecutionProfile, SpeedupModel};

    #[test]
    fn chain_cp_bound() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(20.0));
        g.add_edge(a, b, 0.0).unwrap();
        // Linear speedup on 4 procs: 2.5 + 5.0.
        assert!((critical_path_bound(&g, 4) - 7.5).abs() < 1e-12);
        // Area: both tasks have constant area 30; 30/4.
        assert!((area_bound(&g, 4) - 7.5).abs() < 1e-12);
        assert!((makespan_lower_bound(&g, 4) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn area_bound_uses_cheapest_allocation() {
        // Sub-linear speedup: wider is wasteful, so the cheapest area is at
        // one processor.
        let m = SpeedupModel::downey(4.0, 2.0).unwrap();
        let mut g = TaskGraph::new();
        g.add_task("t", ExecutionProfile::new(12.0, m).unwrap());
        assert!((area_bound(&g, 4) - 12.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn allocation_bound_uses_the_given_widths() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(20.0));
        g.add_edge(a, b, 0.0).unwrap();
        // a on 2 procs (5.0), b on 4 procs (5.0): CP = 10, area = (10+20)/4.
        let alloc = Allocation::from_vec(vec![2, 4]);
        assert!((allocation_lower_bound(&g, &alloc, 4) - 10.0).abs() < 1e-12);
        // At 1 processor the same widths cost their full serial times.
        let ones = Allocation::ones(2);
        assert!((allocation_lower_bound(&g, &ones, 1) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn window_bound_tightens_with_fewer_remaining_steps() {
        // Linear speedup: et(p) = 12/p, so every extra step of widening
        // genuinely lowers the window minimum until it hits p.
        let mut g = TaskGraph::new();
        g.add_task("t", ExecutionProfile::linear(12.0));
        let wb = WideningBounds::new(&g, 4);
        let alloc = Allocation::ones(1);
        // Window [1, 1+d] of et: 12, 6, 4, 3 — but the area 12 is flat, so
        // the area term (12/4 = 3) takes over once CP drops below it.
        let at = |d: usize| wb.cone_bound_within(&g, &alloc, d);
        assert!((at(0) - 12.0).abs() < 1e-12);
        assert!((at(1) - 6.0).abs() < 1e-12);
        assert!((at(2) - 4.0).abs() < 1e-12);
        assert!((at(3) - 3.0).abs() < 1e-12);
        // Past p the window clamps: identical to the full cone.
        assert!((at(17) - wb.cone_bound(&g, &alloc)).abs() < 1e-12);
        // Zero steps degenerate to the single-allocation bound.
        assert!((at(0) - allocation_lower_bound(&g, &alloc, 4)).abs() < 1e-12);
    }

    #[test]
    fn window_bound_is_admissible_under_widening() {
        // Non-monotone profile: et dips at 2 procs then rises. The window
        // min over [np, np+d] must lower-bound et at every reachable width.
        let m = SpeedupModel::Table(
            locmps_speedup::ProfiledSpeedup::from_times(&[10.0, 4.0, 6.0, 6.0]).unwrap(),
        );
        let mut g = TaskGraph::new();
        let t = g.add_task("t", ExecutionProfile::new(10.0, m).unwrap());
        let wb = WideningBounds::new(&g, 4);
        let alloc = Allocation::ones(1);
        for d in 0..4 {
            let bound = wb.cone_bound_within(&g, &alloc, d);
            for np in 1..=(1 + d).min(4) {
                let mut reached = alloc.clone();
                reached.set(t, np);
                assert!(
                    bound <= allocation_lower_bound(&g, &reached, 4) + 1e-12,
                    "window d={d} bound {bound} above reachable np={np}"
                );
            }
        }
    }

    #[test]
    fn independent_tasks_bounded_by_area() {
        let mut g = TaskGraph::new();
        for i in 0..8 {
            g.add_task(format!("t{i}"), ExecutionProfile::linear(10.0));
        }
        // 80 units of work on 2 processors: at least 40.
        assert!((area_bound(&g, 2) - 40.0).abs() < 1e-12);
        // CP bound is a single task at its best: 5.
        assert!((critical_path_bound(&g, 2) - 5.0).abs() < 1e-12);
        assert!((makespan_lower_bound(&g, 2) - 40.0).abs() < 1e-12);
    }
}
