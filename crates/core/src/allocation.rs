//! Per-task processor allocations `np(t)`.

use locmps_taskgraph::{TaskGraph, TaskId};

/// A processor allocation: how many processors each task gets.
///
/// Mapping (which processors) and timing are decided later by the
/// scheduler; the allocation is the object LoC-MPS iterates on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    np: Vec<usize>,
}

impl Allocation {
    /// The pure task-parallel allocation: one processor per task
    /// (Algorithm 1, steps 1–2).
    pub fn ones(n_tasks: usize) -> Self {
        Self {
            np: vec![1; n_tasks],
        }
    }

    /// Every task on all `p` processors (the DATA baseline's allocation).
    pub fn uniform(n_tasks: usize, p: usize) -> Self {
        Self {
            np: vec![p.max(1); n_tasks],
        }
    }

    /// Builds from an explicit vector (one entry per task, each ≥ 1).
    pub fn from_vec(np: Vec<usize>) -> Self {
        assert!(np.iter().all(|&n| n >= 1), "allocations must be >= 1");
        Self { np }
    }

    /// `np(t)`.
    #[inline]
    pub fn np(&self, t: TaskId) -> usize {
        self.np[t.index()]
    }

    /// Sets `np(t)`.
    pub fn set(&mut self, t: TaskId, np: usize) {
        assert!(np >= 1, "allocations must be >= 1");
        self.np[t.index()] = np;
    }

    /// Increments `np(t)` by one, clamped to `max`.
    pub fn widen(&mut self, t: TaskId, max: usize) {
        self.np[t.index()] = (self.np[t.index()] + 1).min(max);
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.np.len()
    }

    /// Whether the allocation covers zero tasks.
    pub fn is_empty(&self) -> bool {
        self.np.is_empty()
    }

    /// The raw vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.np
    }

    /// Execution time of `t` under this allocation.
    pub fn exec_time(&self, g: &TaskGraph, t: TaskId) -> f64 {
        g.task(t).profile.time(self.np(t))
    }

    /// Total processor-time area `Σ np(t) · et(t, np(t))` — the quantity
    /// CPA balances against the critical-path length.
    pub fn total_area(&self, g: &TaskGraph) -> f64 {
        g.task_ids()
            .map(|t| self.np(t) as f64 * self.exec_time(g, t))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_speedup::ExecutionProfile;

    fn two_task_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_task("a", ExecutionProfile::linear(8.0));
        g.add_task("b", ExecutionProfile::linear(4.0));
        g
    }

    #[test]
    fn constructors() {
        let a = Allocation::ones(3);
        assert_eq!(a.as_slice(), &[1, 1, 1]);
        let u = Allocation::uniform(2, 4);
        assert_eq!(u.as_slice(), &[4, 4]);
        let v = Allocation::from_vec(vec![2, 5]);
        assert_eq!(v.np(TaskId(1)), 5);
    }

    #[test]
    fn widen_clamps() {
        let mut a = Allocation::ones(1);
        a.widen(TaskId(0), 2);
        assert_eq!(a.np(TaskId(0)), 2);
        a.widen(TaskId(0), 2);
        assert_eq!(a.np(TaskId(0)), 2, "clamped at max");
    }

    #[test]
    fn exec_time_and_area() {
        let g = two_task_graph();
        let a = Allocation::from_vec(vec![2, 1]);
        assert_eq!(a.exec_time(&g, TaskId(0)), 4.0);
        assert_eq!(a.exec_time(&g, TaskId(1)), 4.0);
        // Area: 2*4 + 1*4 = 12 (linear speedup preserves area).
        assert_eq!(a.total_area(&g), 12.0);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_allocation_panics() {
        Allocation::from_vec(vec![0]);
    }
}
