//! The common scheduler interface implemented by LoC-MPS and every baseline.

use locmps_platform::Cluster;
use locmps_taskgraph::{GraphError, TaskGraph, TaskId};

use crate::allocation::Allocation;
use crate::schedule::Schedule;

/// Errors any scheduler can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The input graph is invalid (cyclic or empty).
    Graph(GraphError),
    /// The allocation vector does not match the task count.
    AllocationMismatch {
        /// Tasks in the graph.
        expected: usize,
        /// Entries in the allocation.
        got: usize,
    },
    /// A task was allocated more processors than the cluster has.
    AllocationTooWide {
        /// The offending task.
        task: TaskId,
        /// Its allocation.
        np: usize,
        /// The cluster size.
        p: usize,
    },
    /// A task's execution profile produced a non-finite run time at its
    /// allocated width. Priorities and placements compare times with total
    /// orderings, so a NaN or infinity would otherwise corrupt every
    /// downstream decision silently; it is rejected up front instead.
    NonFiniteTime {
        /// The offending task.
        task: TaskId,
        /// The processor count whose `time(np)` was non-finite.
        np: usize,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Graph(e) => write!(f, "invalid task graph: {e}"),
            SchedError::AllocationMismatch { expected, got } => {
                write!(f, "allocation covers {got} tasks, graph has {expected}")
            }
            SchedError::AllocationTooWide { task, np, p } => {
                write!(f, "task {task} allocated {np} > {p} processors")
            }
            SchedError::NonFiniteTime { task, np } => {
                write!(
                    f,
                    "task {task} has a non-finite execution time on {np} processors"
                )
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Deterministic work counters of the LoC-MPS refinement search.
///
/// Every field is a pure function of the scheduling inputs — thread count,
/// timing and scheduling order never influence them — so CI can pin exact
/// values and a search-efficiency regression fails loudly without flaky
/// wall-clock gates. Baselines that run no search report all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCounters {
    /// Full LoCBS placement passes run to completion.
    pub locbs_passes: u64,
    /// Bounded-horizon probe passes aborted once the partial schedule
    /// length provably exceeded the incumbent makespan.
    pub probes_aborted: u64,
    /// Look-ahead branches (and corner probes) skipped entirely because
    /// the admissible lower bound could not beat the incumbent.
    pub branches_pruned: u64,
    /// Look-ahead walks cut short mid-branch by the widening-cone bound.
    pub lookahead_cutoffs: u64,
    /// Look-ahead passes answered by the allocation-keyed pass memo
    /// instead of a fresh placement (LoCBS output is a pure function of
    /// the graph and the allocation, so replays are exact).
    pub pass_memo_hits: u64,
    /// Look-ahead branch jobs dispatched to the worker pool.
    pub pool_tasks: u64,
    /// Improving rounds committed by the outer search loop.
    pub commits: u64,
}

impl SearchCounters {
    /// Whether any search work was recorded at all (baselines report
    /// all-zero counters).
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

/// What a scheduler returns: the schedule, the allocation behind it, and —
/// for LoCBS-based schedulers — the pseudo-edge schedule-DAG `G'`.
#[derive(Debug, Clone)]
pub struct SchedulerOutput {
    /// Placement and timing of every task.
    pub schedule: Schedule,
    /// The processor counts the scheduler settled on.
    pub allocation: Allocation,
    /// `G'` when the scheduler constructs one (`None` for e.g. DATA).
    pub schedule_dag: Option<TaskGraph>,
    /// Search-effort counters (all zeros for schedulers without a
    /// refinement search).
    pub counters: SearchCounters,
}

impl SchedulerOutput {
    /// The schedule length.
    pub fn makespan(&self) -> f64 {
        self.schedule.makespan()
    }
}

// The serve daemon computes schedules on worker threads and shares the
// results across connections, so scheduler outputs must stay plain owned
// data. These assertions turn an accidental `Rc`/`RefCell` in any nested
// type into a compile error instead of a daemon that no longer builds.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SchedulerOutput>();
    assert_send_sync::<SearchCounters>();
    assert_send_sync::<SchedError>();
};

/// A mixed-parallel scheduler: decides allocation, mapping and timing for a
/// task graph on a cluster.
pub trait Scheduler {
    /// Short identifier used in reports ("LoC-MPS", "CPR", …).
    fn name(&self) -> &'static str;

    /// Computes a complete schedule.
    fn schedule(&self, g: &TaskGraph, cluster: &Cluster) -> Result<SchedulerOutput, SchedError>;
}
