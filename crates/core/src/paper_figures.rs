//! Cross-cutting tests that replay the worked examples of the paper's
//! Figures 1–3 end-to-end (the per-module tests cover the pieces; these
//! exercise the full pipeline and the claims the paper attaches to each
//! figure).

use locmps_platform::Cluster;
use locmps_speedup::{ExecutionProfile, ProfiledSpeedup, SpeedupModel};
use locmps_taskgraph::TaskGraph;

use crate::allocation::Allocation;
use crate::bounds::makespan_lower_bound;
use crate::commcost::CommModel;
use crate::locbs::{Locbs, LocbsOptions};
use crate::locmps::{LocMps, LocMpsConfig};
use crate::scheduler::Scheduler;

fn profiled(times: &[f64]) -> ExecutionProfile {
    ExecutionProfile::new(
        times[0],
        SpeedupModel::Table(ProfiledSpeedup::from_times(times).unwrap()),
    )
    .unwrap()
}

/// Figure 1's diamond with the allocation table of Fig 1(b).
fn fig1_graph() -> TaskGraph {
    let mut g = TaskGraph::new();
    let t1 = g.add_task("T1", profiled(&[40.0, 20.0, 13.3, 10.0]));
    let t2 = g.add_task("T2", profiled(&[21.0, 10.5, 7.0]));
    let t3 = g.add_task("T3", profiled(&[10.0, 5.0]));
    let t4 = g.add_task("T4", profiled(&[32.0, 16.0, 10.7, 8.0]));
    g.add_edge(t1, t2, 0.0).unwrap();
    g.add_edge(t1, t3, 0.0).unwrap();
    g.add_edge(t2, t4, 0.0).unwrap();
    g.add_edge(t3, t4, 0.0).unwrap();
    g
}

#[test]
fn fig1_schedule_dag_critical_path_is_the_makespan() {
    let g = fig1_graph();
    let cluster = Cluster::new(4, 12.5);
    let model = CommModel::new(&cluster);
    let alloc = Allocation::from_vec(vec![4, 3, 2, 4]);
    let res = Locbs::new(model, LocbsOptions::default())
        .run(&g, &alloc)
        .unwrap();
    // The paper's claim: "The makespan of the schedule G', which is the
    // critical path length of G', is 30."
    let cp = res
        .schedule_dag
        .critical_path(|t| g.task(t).profile.time(alloc.np(t)), |_| 0.0);
    assert!((cp.length - 30.0).abs() < 1e-9);
    assert!((res.makespan - cp.length).abs() < 1e-9);
}

#[test]
fn fig3_lookahead_beats_greedy_and_matches_data_parallel() {
    let mut g = TaskGraph::new();
    g.add_task("T1", ExecutionProfile::linear(40.0));
    g.add_task("T2", ExecutionProfile::linear(80.0));
    let cluster = Cluster::new(4, 12.5);
    let full = LocMps::default().schedule(&g, &cluster).unwrap();
    let greedy = LocMps::new(LocMpsConfig::greedy())
        .schedule(&g, &cluster)
        .unwrap();
    // Data-parallel reference: both tasks on all 4 procs in sequence.
    let data_parallel = 40.0 / 4.0 + 80.0 / 4.0;
    assert!((full.makespan() - data_parallel).abs() < 1e-6);
    assert!(greedy.makespan() > full.makespan() + 1.0);
    // And the bound machinery agrees nothing better was possible.
    assert!(full.makespan() >= makespan_lower_bound(&g, 4) - 1e-9);
}

#[test]
fn lower_bounds_hold_on_all_figure_graphs() {
    let cluster = Cluster::new(4, 12.5);
    let g = fig1_graph();
    let out = LocMps::default().schedule(&g, &cluster).unwrap();
    assert!(out.makespan() + 1e-9 >= makespan_lower_bound(&g, 4));
    out.schedule
        .validate(&g, &CommModel::new(&cluster))
        .unwrap();
}
