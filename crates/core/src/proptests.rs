//! Property tests: every schedule LoCBS/LoC-MPS produces is valid, bounded
//! below by the makespan lower bounds, and deterministic.

use locmps_platform::Cluster;
use locmps_speedup::{DowneyParams, ExecutionProfile, SpeedupModel};
use locmps_taskgraph::{TaskGraph, TaskId};
use proptest::prelude::*;

use crate::allocation::Allocation;
use crate::bounds::makespan_lower_bound;
use crate::commcost::CommModel;
use crate::locbs::{Locbs, LocbsOptions};
use crate::locmps::{LocMps, LocMpsConfig};
use crate::scheduler::Scheduler;

/// Random DAG with Downey-profiled tasks and volume-carrying edges.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..12, any::<u64>(), 0.1..0.4f64).prop_map(|(n, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = TaskGraph::new();
        for i in 0..n {
            let work = 5.0 + 25.0 * next();
            let a = 1.0 + 31.0 * next();
            let sigma = 2.0 * next();
            let model = SpeedupModel::Downey(DowneyParams::new(a, sigma).unwrap());
            g.add_task(format!("t{i}"), ExecutionProfile::new(work, model).unwrap());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if next() < density {
                    g.add_edge(TaskId(i as u32), TaskId(j as u32), 100.0 * next())
                        .unwrap();
                }
            }
        }
        g
    })
}

fn arb_cluster() -> impl Strategy<Value = Cluster> {
    (1usize..12, prop_oneof![Just(true), Just(false)]).prop_map(|(p, overlap)| {
        let c = Cluster::new(p, 12.5);
        if overlap {
            c
        } else {
            c.without_overlap()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn locbs_schedules_are_valid(g in arb_graph(), cluster in arb_cluster(), backfill in any::<bool>()) {
        let model = CommModel::new(&cluster);
        let alloc = Allocation::ones(g.n_tasks());
        let res = Locbs::new(model, LocbsOptions { backfill }).run(&g, &alloc).unwrap();
        prop_assert!(res.schedule.validate(&g, &model).is_ok(),
            "invalid schedule: {:?}", res.schedule.validate(&g, &model));
        prop_assert!((res.makespan - res.schedule.makespan()).abs() < 1e-9);
        // G' must still be a DAG containing all original edges.
        prop_assert!(res.schedule_dag.validate().is_ok());
        prop_assert!(res.schedule_dag.n_edges() >= g.n_edges());
    }

    #[test]
    fn locmps_schedules_are_valid_and_bounded(g in arb_graph(), cluster in arb_cluster()) {
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        let model = CommModel::new(&cluster);
        prop_assert!(out.schedule.validate(&g, &model).is_ok(),
            "invalid: {:?}", out.schedule.validate(&g, &model));
        let lb = makespan_lower_bound(&g, cluster.n_procs);
        prop_assert!(out.makespan() + 1e-6 >= lb,
            "makespan {} below lower bound {lb}", out.makespan());
        // Allocation within limits.
        for t in g.task_ids() {
            let np = out.allocation.np(t);
            prop_assert!(np >= 1 && np <= cluster.n_procs);
            prop_assert_eq!(out.schedule.get(t).unwrap().np(), np);
        }
    }

    #[test]
    fn locmps_never_worse_than_task_parallel(g in arb_graph(), p in 1usize..10) {
        let cluster = Cluster::new(p, 12.5);
        let model = CommModel::new(&cluster);
        let task = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::ones(g.n_tasks()))
            .unwrap();
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        prop_assert!(out.makespan() <= task.makespan * (1.0 + 1e-9),
            "LoC-MPS {} worse than its own starting point {}", out.makespan(), task.makespan);
    }

    #[test]
    fn deterministic_given_same_inputs(g in arb_graph(), p in 1usize..8) {
        let cluster = Cluster::new(p, 12.5);
        let a = LocMps::default().schedule(&g, &cluster).unwrap();
        let b = LocMps::default().schedule(&g, &cluster).unwrap();
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn no_backfill_variant_is_valid_and_comparable(g in arb_graph(), p in 2usize..8) {
        // Backfill dominance is NOT a theorem (per-task greedy choices
        // diverge after the first difference), but both variants must be
        // valid and every task's finish must be at least the per-task lower
        // bound; the aggregate Figure 6 comparison lives in the bench crate.
        let cluster = Cluster::new(p, 12.5);
        let model = CommModel::new(&cluster);
        let alloc = Allocation::ones(g.n_tasks());
        let with = Locbs::new(model, LocbsOptions { backfill: true }).run(&g, &alloc).unwrap();
        let without = Locbs::new(model, LocbsOptions { backfill: false }).run(&g, &alloc).unwrap();
        prop_assert!(with.schedule.validate(&g, &model).is_ok());
        prop_assert!(without.schedule.validate(&g, &model).is_ok());
        let lb = makespan_lower_bound(&g, p);
        prop_assert!(with.makespan + 1e-6 >= lb);
        prop_assert!(without.makespan + 1e-6 >= lb);
    }

    #[test]
    fn icaslb_valid_under_its_own_model(g in arb_graph(), p in 1usize..8) {
        let cluster = Cluster::new(p, 12.5);
        let out = LocMps::new(LocMpsConfig::icaslb()).schedule(&g, &cluster).unwrap();
        let blind = CommModel::blind(&cluster);
        prop_assert!(out.schedule.validate(&g, &blind).is_ok());
    }
}
