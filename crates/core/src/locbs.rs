//! **LoCBS** — Locality Conscious Backfill Scheduling (Algorithm 2).
//!
//! Given a task graph and a processor allocation `np(t)`, LoCBS decides
//! *which* processors each task runs on and *when*:
//!
//! 1. ready tasks are served in priority order — highest
//!    `bottomL(t) + max_{e into t} wt(e)` first;
//! 2. for the chosen task, every *hole* of the 2-D resource chart that can
//!    hold `np(t)` processors is examined (backfilling); within each hole
//!    the processor subset with **maximum locality** for the task's input
//!    data is selected, the redistribution completion time is computed with
//!    the exact block-cyclic single-port model, and the placement with the
//!    **minimum finish time** wins;
//! 3. if the task starts later than its earliest (data-ready) start time,
//!    zero-weight *pseudo-edges* from the tasks that block it are added to
//!    a copy of the graph — the resulting *schedule-DAG* `G'` is what
//!    LoC-MPS computes critical paths on.
//!
//! The *no-backfill* variant (Figure 6's ablation) keeps only the last free
//! time of each processor instead of enumerating holes.

use locmps_platform::{CommOverlap, ProcId, ProcSet};
use locmps_taskgraph::{TaskGraph, TaskId};

use crate::allocation::Allocation;
use crate::commcost::{CommModel, EstimateCache};
use crate::locality::{input_locality_scores_into, select_max_locality_into};
use crate::schedule::{time_eps, Schedule, ScheduledTask};
use crate::scheduler::SchedError;
use crate::timeline::Timeline;

/// LoCBS configuration.
#[derive(Debug, Clone, Copy)]
pub struct LocbsOptions {
    /// `true`: full backfilling over schedule holes (the paper's default).
    /// `false`: the cheaper last-free-time variant of Figure 6.
    pub backfill: bool,
}

impl Default for LocbsOptions {
    fn default() -> Self {
        Self { backfill: true }
    }
}

/// Output of one LoCBS run.
#[derive(Debug, Clone)]
pub struct LocbsResult {
    /// Placement and timing for every task.
    pub schedule: Schedule,
    /// `G'`: the input graph plus pseudo-edges for induced dependences.
    pub schedule_dag: TaskGraph,
    /// The schedule length (== `schedule.makespan()`).
    pub makespan: f64,
}

/// The LoCBS scheduler: maps an (graph, allocation) pair to a schedule.
#[derive(Debug, Clone, Copy)]
pub struct Locbs<'a> {
    model: CommModel<'a>,
    opts: LocbsOptions,
}

/// One candidate placement under evaluation.
struct Placement {
    start: f64,
    compute_start: f64,
    finish: f64,
    procs: ProcSet,
}

/// Reusable working memory for [`Locbs::run_into`].
///
/// A scratch is tied to one `(graph, communication model)` pair: the
/// estimate memo is keyed by edge index and endpoint widths only, so
/// sharing it across graphs or models would silently serve stale values.
/// LoC-MPS keeps one scratch per look-ahead branch and reuses it across
/// every refinement iteration — that reuse (plus the allocation-tagged
/// memo) is what makes repeated LoCBS invocations cheap.
#[derive(Debug, Default)]
pub struct LocbsScratch {
    estimates: EstimateCache,
    edge_est: Vec<f64>,
    priority: Vec<f64>,
    scores: Vec<f64>,
    sel_procs: Vec<ProcId>,
    free: ProcSet,
    sel: ProcSet,
    nb_times: Vec<f64>,
}

impl LocbsScratch {
    /// Fresh, empty working memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-arms the scratch for a *different* graph: invalidates the
    /// edge-indexed estimate memo (whose entries would otherwise be served
    /// stale across graphs) and sizes it for `g`.
    ///
    /// Call once before the first [`Locbs::run_into`] on a new graph; the
    /// remaining buffers are sized per call and need no reset. This is what
    /// lets one long-lived scratch serve repeated replanning over shrinking
    /// residual DAGs.
    pub fn reset_for(&mut self, g: &TaskGraph) {
        self.estimates.reset_for(g);
        self.edge_est.clear();
        // The pool workers' thread-local scratches cycle through many
        // graphs; a reset that left a stale memo entry behind would serve
        // wrong estimates *silently*, so verify full clearing here.
        debug_assert!(
            self.edge_est.is_empty() && self.estimates.is_clear(),
            "reset_for must leave no carried estimate state"
        );
    }
}

impl<'a> Locbs<'a> {
    /// Creates a scheduler over the given communication model.
    pub fn new(model: CommModel<'a>, opts: LocbsOptions) -> Self {
        Self { model, opts }
    }

    /// Runs Algorithm 2.
    ///
    /// # Errors
    /// Fails when the graph is invalid, the allocation vector does not
    /// cover the graph, some `np(t)` exceeds the cluster size, or some
    /// task's execution time is non-finite at its allocated width.
    pub fn run(&self, g: &TaskGraph, alloc: &Allocation) -> Result<LocbsResult, SchedError> {
        let mut dag = g.clone();
        let mut scratch = LocbsScratch::new();
        let (schedule, makespan) = self.run_into(&mut dag, alloc, &mut scratch)?;
        Ok(LocbsResult {
            schedule,
            schedule_dag: dag,
            makespan,
        })
    }

    /// In-place form of [`Locbs::run`] for callers that invoke LoCBS
    /// repeatedly on the same graph (the LoC-MPS refinement loop).
    ///
    /// `dag` is the task graph, possibly still carrying pseudo-edges from a
    /// previous run — they are stripped on entry and this run's pseudo-edges
    /// are recorded in their place, so on success `dag` *is* the
    /// schedule-DAG `G'` (no per-iteration graph clone). `scratch` carries
    /// buffers and the allocation-tagged estimate memo across calls; see
    /// [`LocbsScratch`] for the reuse contract.
    pub fn run_into(
        &self,
        dag: &mut TaskGraph,
        alloc: &Allocation,
        scratch: &mut LocbsScratch,
    ) -> Result<(Schedule, f64), SchedError> {
        match self.run_into_bounded(dag, alloc, scratch, f64::INFINITY)? {
            Some(out) => Ok(out),
            // No finite finish time exceeds an infinite horizon.
            None => unreachable!("an unbounded pass never aborts"),
        }
    }

    /// [`Locbs::run_into`] with an abort **horizon** for probe passes.
    ///
    /// The pass aborts — `Ok(None)` is returned immediately — as soon as
    /// the final makespan provably exceeds `horizon`:
    ///
    /// * before any placement, when the allocation's zero-communication
    ///   critical path or its processor-area `Σ np·et / P` already exceeds
    ///   the horizon (both are admissible lower bounds on any schedule of
    ///   this allocation);
    /// * during placement, when some placed task's finish time plus the
    ///   zero-communication bottom level of its successors exceeds the
    ///   horizon — placements never move once made and every successor
    ///   chain still has to execute after that finish, so the completed
    ///   pass would have ended past the horizon.
    ///
    /// Every early trigger implies the plain `finish > horizon` test would
    /// have fired on the completed pass (the makespan-achieving task's
    /// finish *is* the makespan), so the set of aborting passes — and with
    /// it every deterministic search counter — is identical to detecting
    /// the overrun late; the probe just stops paying for placements whose
    /// outcome is already decided. A caller probing against an incumbent
    /// of length `horizon` learns everything it needs from the abort
    /// alone. LoC-MPS aborts its corner-restart probes this way; passes
    /// whose schedule is consumed (committed passes, look-ahead steps that
    /// feed the next refinement) must use the unbounded form.
    ///
    /// On abort, `dag` may carry a partial set of this pass's pseudo-edges;
    /// it remains valid scratch for the next `run_into`, which strips them
    /// on entry.
    ///
    /// # Errors
    /// Exactly those of [`Locbs::run_into`]; input validation happens
    /// before any placement, so an abort can only occur on valid inputs.
    pub fn run_into_bounded(
        &self,
        dag: &mut TaskGraph,
        alloc: &Allocation,
        scratch: &mut LocbsScratch,
        horizon: f64,
    ) -> Result<Option<(Schedule, f64)>, SchedError> {
        dag.clear_pseudo_edges();
        crate::invariant!(
            dag.edges()
                .all(|(_, e)| e.kind == locmps_taskgraph::EdgeKind::Data),
            "schedule-DAG buffer must enter the placement loop pseudo-free"
        );
        dag.validate().map_err(SchedError::Graph)?;
        let p_total = self.model.cluster().n_procs;
        if alloc.len() != dag.n_tasks() {
            return Err(SchedError::AllocationMismatch {
                expected: dag.n_tasks(),
                got: alloc.len(),
            });
        }
        for t in dag.task_ids() {
            if alloc.np(t) > p_total {
                return Err(SchedError::AllocationTooWide {
                    task: t,
                    np: alloc.np(t),
                    p: p_total,
                });
            }
            if !dag.task(t).profile.time(alloc.np(t)).is_finite() {
                return Err(SchedError::NonFiniteTime {
                    task: t,
                    np: alloc.np(t),
                });
            }
        }

        // Static priorities: bottom level + heaviest in-edge estimate
        // (Algorithm 2, step 4). Estimates go through the memo — across
        // LoC-MPS iterations only edges incident to the widened task miss.
        scratch.estimates.grow_for(dag);
        scratch.edge_est.clear();
        for e in dag.edge_ids() {
            let est = self
                .model
                .edge_estimate_cached(dag, alloc, e, &mut scratch.estimates);
            scratch.edge_est.push(est);
        }
        let levels = dag.levels(
            |t| dag.task(t).profile.time(alloc.np(t)),
            |e| scratch.edge_est[e.index()],
        );
        scratch.priority.clear();
        for t in dag.task_ids() {
            let heaviest_in = dag
                .in_edges(t)
                .map(|e| scratch.edge_est[e.index()])
                .fold(0.0f64, f64::max);
            scratch
                .priority
                .push(levels.bottom[t.index()] + heaviest_in);
        }
        crate::invariant!(
            scratch.priority.len() == dag.n_tasks() && scratch.edge_est.len() == dag.n_edges(),
            "scratch priority/estimate buffers must cover the whole graph"
        );

        // Bounded passes precompute the zero-communication bottom levels:
        // `chain_below[t]` is the longest pure-compute successor chain of
        // `t` at the current widths, an admissible lower bound on the time
        // that must still elapse after `t` finishes. Unbounded (committed)
        // passes skip all of this.
        let chain_below: Option<Vec<f64>> = horizon.is_finite().then(|| {
            let zero = dag.levels(|t| dag.task(t).profile.time(alloc.np(t)), |_| 0.0);
            dag.task_ids()
                .map(|t| zero.bottom[t.index()] - dag.task(t).profile.time(alloc.np(t)))
                .collect()
        });
        if let Some(chain_below) = &chain_below {
            // Whole-allocation lower bounds: the zero-communication critical
            // path and the processor-area bound. Either above the horizon
            // decides the probe before a single task is placed.
            let cp0 = dag
                .task_ids()
                .map(|t| chain_below[t.index()] + dag.task(t).profile.time(alloc.np(t)))
                .fold(0.0f64, f64::max);
            let area = dag
                .task_ids()
                .map(|t| alloc.np(t) as f64 * dag.task(t).profile.time(alloc.np(t)))
                .sum::<f64>()
                / p_total as f64;
            if cp0.max(area) > horizon {
                return Ok(None);
            }
        }

        let mut timeline = Timeline::new(p_total);
        let mut placed: Vec<Option<ScheduledTask>> = vec![None; dag.n_tasks()];
        let mut remaining_preds: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = dag
            .task_ids()
            .filter(|&t| remaining_preds[t.index()] == 0)
            .collect();

        while let Some(pos) = pick_highest_priority(&ready, &scratch.priority) {
            let t = ready.swap_remove(pos);
            let placement = self.place(dag, alloc, t, &placed, &timeline, scratch);
            let below = chain_below.as_ref().map_or(0.0, |c| c[t.index()]);
            if placement.finish + below > horizon {
                // Placements are final and every successor chain of `t`
                // still has to run after this finish: the completed
                // schedule would end past the horizon, so the pass cannot
                // beat the caller's incumbent. Stop paying for the rest.
                return Ok(None);
            }
            timeline.occupy(&placement.procs, placement.start, placement.finish);

            // Pseudo-edges: the task is resource-blocked when it occupies
            // its processors later than its earliest start time (est). The
            // tolerances are bounded by half the intervals involved so a
            // large makespan cannot inflate them past real task durations
            // (a blocker must *end where the blocked task starts*, not
            // merely within a relative-eps band of it).
            let est = self.earliest_start(dag, t, &placed, &placement);
            let plen = placement.finish - placement.start;
            if placement.start > est + time_eps(placement.start).min(0.5 * plen) {
                for (other_idx, other) in placed.iter().enumerate() {
                    if let Some(o) = other {
                        let eps = time_eps(placement.start)
                            .min(0.5 * plen)
                            .min(0.5 * (o.finish - o.start));
                        if (o.finish - placement.start).abs() <= eps
                            && !o.procs.is_disjoint(&placement.procs)
                        {
                            dag.add_pseudo_edge(TaskId(other_idx as u32), t)
                                .expect("pseudo edge endpoints exist");
                        }
                    }
                }
            }

            placed[t.index()] = Some(ScheduledTask {
                task: t,
                procs: placement.procs,
                start: placement.start,
                compute_start: placement.compute_start,
                finish: placement.finish,
            });
            for s in dag.successors(t) {
                remaining_preds[s.index()] -= 1;
                if remaining_preds[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }

        let entries: Vec<ScheduledTask> = placed
            .into_iter()
            .map(|e| e.expect("DAG guarantees all tasks schedule"))
            .collect();
        let schedule = Schedule::from_entries(entries);
        let makespan = schedule.makespan();
        debug_assert!(dag.validate().is_ok(), "pseudo edges must keep G' acyclic");
        Ok(Some((schedule, makespan)))
    }

    /// The earliest start time `est(t) = max(ft(t0) + ct(t0, t))` given the
    /// *chosen* placement (used only for the pseudo-edge test).
    fn earliest_start(
        &self,
        g: &TaskGraph,
        t: TaskId,
        placed: &[Option<ScheduledTask>],
        placement: &Placement,
    ) -> f64 {
        let mut est = 0.0f64;
        for e in g.in_edges(t) {
            let edge = g.edge(e);
            let src = placed[edge.src.index()]
                .as_ref()
                .expect("parents are scheduled first");
            let ct = match self.model.cluster().overlap {
                CommOverlap::Full => {
                    self.model
                        .transfer_time(&src.procs, &placement.procs, edge.volume)
                }
                // Under no-overlap the transfer happens inside the task's
                // own occupancy window, so data readiness is parent finish.
                CommOverlap::None => 0.0,
            };
            est = est.max(src.finish + ct);
        }
        est
    }

    /// Finds the minimum-finish-time placement for `t` (Algorithm 2, steps
    /// 5–16), backfilling over holes or, in the no-backfill variant, after
    /// the last free times only.
    ///
    /// Candidate starts stream from the timeline's event-list cursor with
    /// the current best finish as the horizon, so candidates that cannot
    /// improve the placement are never enumerated, and every per-candidate
    /// buffer (free set, score vector, selection) lives in `scratch`.
    fn place(
        &self,
        g: &TaskGraph,
        alloc: &Allocation,
        t: TaskId,
        placed: &[Option<ScheduledTask>],
        timeline: &Timeline,
        scratch: &mut LocbsScratch,
    ) -> Placement {
        let np = alloc.np(t);
        let et = g.task(t).profile.time(np);
        let p_total = self.model.cluster().n_procs;
        let data_ready = g
            .in_edges(t)
            .map(|e| {
                placed[g.edge(e).src.index()]
                    .as_ref()
                    .expect("parents first")
                    .finish
            })
            .fold(0.0f64, f64::max);
        input_locality_scores_into(
            g,
            t,
            p_total,
            |p| &placed[p.index()].as_ref().expect("parents first").procs,
            &mut scratch.scores,
        );

        let mut cursor = timeline.candidates_after(data_ready);
        let mut nb_idx = 0usize;
        if !self.opts.backfill {
            // No-backfill: the only start considered is after the last free
            // time of the selected processors; seed with the global horizon
            // candidates computed from last-free-times.
            scratch.nb_times.clear();
            scratch
                .nb_times
                .extend((0..p_total as u32).map(|p| timeline.last_free_time(p).max(data_ready)));
            scratch.nb_times.sort_by(f64::total_cmp);
            scratch
                .nb_times
                .dedup_by(|a, b| (*a - *b).abs() <= time_eps(*a));
        }

        let mut best: Option<Placement> = None;
        // The transfer costs below depend only on the *selected subset*
        // (parent placements are fixed), and consecutive candidates often
        // select the same processors — a one-entry memo skips the exact
        // block-cyclic walks entirely on those repeats.
        let mut memo_sel = ProcSet::new();
        let mut memo_cost = f64::NAN;
        loop {
            // No later hole can finish earlier than the current best.
            let horizon = best.as_ref().map_or(f64::INFINITY, |b| b.finish);
            let s = if self.opts.backfill {
                match cursor.next_below(horizon) {
                    Some(s) => s,
                    None => break,
                }
            } else {
                match scratch.nb_times.get(nb_idx).copied() {
                    Some(s) if s < horizon => {
                        nb_idx += 1;
                        s
                    }
                    _ => break,
                }
            };
            if self.opts.backfill {
                timeline.free_set_into(s, s + et, &mut scratch.free);
            } else {
                // Only processors whose last booking has ended are eligible
                // — holes are invisible to this variant.
                scratch.free.clear();
                for p in 0..p_total as u32 {
                    if timeline.last_free_time(p) <= s + time_eps(s) {
                        scratch.free.insert(p);
                    }
                }
            }
            if scratch.free.len() < np {
                continue;
            }
            if !select_max_locality_into(
                &scratch.free,
                np,
                &scratch.scores,
                &mut scratch.sel_procs,
                &mut scratch.sel,
            ) {
                continue;
            }
            crate::invariant!(
                scratch.sel.len() == np,
                "locality selection must return exactly np processors"
            );
            let procs = &scratch.sel;

            let (start, compute_start, finish) = match self.model.cluster().overlap {
                CommOverlap::Full => {
                    // Redistribution completion time on this subset.
                    let rct = if memo_cost.is_finite() && memo_sel == *procs {
                        memo_cost
                    } else {
                        let mut rct = data_ready;
                        for e in g.in_edges(t) {
                            let edge = g.edge(e);
                            let src = placed[edge.src.index()].as_ref().expect("parents first");
                            let ct = self.model.transfer_time(&src.procs, procs, edge.volume);
                            rct = rct.max(src.finish + ct);
                        }
                        memo_sel.clone_from(procs);
                        memo_cost = rct;
                        rct
                    };
                    let st = s.max(rct);
                    (st, st, st + et)
                }
                CommOverlap::None => {
                    // Inbound transfers serialize inside the occupancy
                    // window (single-port at the receiver).
                    let comm_total = if memo_cost.is_finite() && memo_sel == *procs {
                        memo_cost
                    } else {
                        let mut comm_total = 0.0;
                        for e in g.in_edges(t) {
                            let edge = g.edge(e);
                            let src = placed[edge.src.index()].as_ref().expect("parents first");
                            comm_total += self.model.transfer_time(&src.procs, procs, edge.volume);
                        }
                        memo_sel.clone_from(procs);
                        memo_cost = comm_total;
                        comm_total
                    };
                    let st = s.max(data_ready);
                    (st, st + comm_total, st + comm_total + et)
                }
            };

            // The window guess was [s, s+et); the real occupancy may have
            // shifted or grown — verify it on the actual interval.
            let feasible = procs.iter().all(|p| {
                if self.opts.backfill {
                    timeline.is_free(p, start, finish)
                } else {
                    timeline.last_free_time(p) <= start + time_eps(start)
                }
            });
            if !feasible {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => {
                    finish < b.finish - time_eps(finish)
                        || ((finish - b.finish).abs() <= time_eps(finish) && start < b.start)
                }
            };
            if better {
                match &mut best {
                    Some(b) => {
                        b.start = start;
                        b.compute_start = compute_start;
                        b.finish = finish;
                        b.procs.clone_from(procs);
                    }
                    None => {
                        best = Some(Placement {
                            start,
                            compute_start,
                            finish,
                            procs: procs.clone(),
                        })
                    }
                }
            }
        }
        best.expect("the all-free horizon candidate always fits")
    }
}

/// Index of the highest-priority ready task (ties toward lower task id).
///
/// `total_cmp` keeps the comparison a total order: run-time inputs cannot
/// produce NaN priorities (non-finite execution times are rejected at
/// validation), but a comparison that *could* panic has no place in the
/// innermost scheduler loop.
fn pick_highest_priority(ready: &[TaskId], priority: &[f64]) -> Option<usize> {
    ready
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            priority[a.index()]
                .total_cmp(&priority[b.index()])
                .then(b.cmp(a)) // lower id wins ties
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_platform::Cluster;
    use locmps_speedup::{ExecutionProfile, ProfiledSpeedup, SpeedupModel};
    use locmps_taskgraph::EdgeKind;

    fn profiled(times: &[f64]) -> ExecutionProfile {
        ExecutionProfile::new(
            times[0],
            SpeedupModel::Table(ProfiledSpeedup::from_times(times).unwrap()),
        )
        .unwrap()
    }

    /// Figure 1: T1 -> {T2, T3} -> T4 on 4 processors with the allocation
    /// of Fig 1(b); T2 and T3 get serialized, yielding makespan 30 and a
    /// pseudo-edge between them.
    #[test]
    fn fig1_pseudo_edges_and_makespan() {
        let mut g = TaskGraph::new();
        // et on the allocated counts: T1: 10 on 4, T2: 7 on 3, T3: 5 on 2,
        // T4: 8 on 4. Fill profiles so time(np) matches.
        let t1 = g.add_task("T1", profiled(&[40.0, 20.0, 13.3, 10.0]));
        let t2 = g.add_task("T2", profiled(&[21.0, 10.5, 7.0]));
        let t3 = g.add_task("T3", profiled(&[10.0, 5.0]));
        let t4 = g.add_task("T4", profiled(&[32.0, 16.0, 10.7, 8.0]));
        g.add_edge(t1, t2, 0.0).unwrap();
        g.add_edge(t1, t3, 0.0).unwrap();
        g.add_edge(t2, t4, 0.0).unwrap();
        g.add_edge(t3, t4, 0.0).unwrap();
        let cluster = Cluster::new(4, 12.5);
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        let alloc = Allocation::from_vec(vec![4, 3, 2, 4]);
        let res = locbs.run(&g, &alloc).unwrap();
        assert!(
            (res.makespan - 30.0).abs() < 1e-9,
            "paper reports 30, got {}",
            res.makespan
        );
        // T2 (3 procs) and T3 (2 procs) cannot coexist on 4 processors:
        // exactly one pseudo-edge between them must appear in G'.
        let pseudo: Vec<_> = res
            .schedule_dag
            .edges()
            .filter(|(_, e)| e.kind == EdgeKind::Pseudo)
            .map(|(_, e)| (e.src, e.dst))
            .collect();
        assert_eq!(pseudo, vec![(t2, t3)]);
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn independent_tasks_run_concurrently() {
        let mut g = TaskGraph::new();
        g.add_task("a", ExecutionProfile::linear(10.0));
        g.add_task("b", ExecutionProfile::linear(10.0));
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::ones(2))
            .unwrap();
        assert!((res.makespan - 10.0).abs() < 1e-9);
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn backfill_uses_holes_that_no_backfill_wastes() {
        // Wide task W (2 procs) forced to wait for chain head H; a small
        // independent task S fits in the hole next to H under backfill.
        //   H(1p, 10s) -> W(2p, 10s);  S(1p, 8s) independent.
        let mut g = TaskGraph::new();
        let h = g.add_task("H", ExecutionProfile::linear(10.0));
        let w = g.add_task("W", profiled(&[20.0, 10.0]));
        let s = g.add_task("S", ExecutionProfile::linear(8.0));
        g.add_edge(h, w, 0.0).unwrap();
        let _ = s;
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let alloc = Allocation::from_vec(vec![1, 2, 1]);
        let with = Locbs::new(model, LocbsOptions { backfill: true })
            .run(&g, &alloc)
            .unwrap();
        let without = Locbs::new(model, LocbsOptions { backfill: false })
            .run(&g, &alloc)
            .unwrap();
        // Backfill: S runs beside H during [0,8); W at [10,20): makespan 20.
        assert!((with.makespan - 20.0).abs() < 1e-9, "got {}", with.makespan);
        // Priorities put H (bottom level 20) first, then W, then S; the
        // no-backfill variant can only append S after W: makespan 28.
        assert!(without.makespan >= 27.9, "got {}", without.makespan);
        with.schedule.validate(&g, &model).unwrap();
        without.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn locality_pulls_consumer_onto_producer_procs() {
        // a on some proc produces 100 MB for b; placing b on a's processor
        // avoids the transfer entirely.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        let c = g.add_task("c", ExecutionProfile::linear(10.0));
        g.add_edge(a, b, 100.0).unwrap();
        let _ = c;
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::ones(3))
            .unwrap();
        let pa = &res.schedule.get(a).unwrap().procs;
        let pb = &res.schedule.get(b).unwrap().procs;
        assert_eq!(pa, pb, "consumer should follow its data");
        assert!((res.makespan - 20.0).abs() < 1e-9);
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn no_overlap_reserves_comm_window() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        // Force a transfer by occupying a's processor with a filler chain so
        // locality can't collapse them... simpler: two procs, volume large,
        // but locality makes b land on a's proc and transfer vanishes. To
        // exercise the window we pin np(b)=2 so b must span both procs.
        g.add_edge(a, b, 125.0).unwrap();
        let cluster = Cluster::new(2, 12.5).without_overlap();
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::from_vec(vec![1, 2]))
            .unwrap();
        let eb = res.schedule.get(b).unwrap();
        assert!(eb.compute_start > eb.start, "comm window must be reserved");
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn priority_includes_heaviest_in_edge() {
        // Two consumers with identical bottom levels; y's inbound transfer
        // is far heavier, so Algorithm 2's priority (bottomL + heaviest
        // in-edge) must serve y first — it lands on the single free
        // processor at its data-ready time, x queues behind it.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let x = g.add_task("x", ExecutionProfile::linear(10.0));
        let y = g.add_task("y", ExecutionProfile::linear(10.0));
        g.add_edge(a, x, 1.0).unwrap();
        g.add_edge(a, y, 500.0).unwrap();
        let cluster = Cluster::new(1, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::ones(3))
            .unwrap();
        let sx = res.schedule.get(x).unwrap().compute_start;
        let sy = res.schedule.get(y).unwrap().compute_start;
        assert!(
            sy < sx,
            "heavy-in-edge task must be prioritized: y at {sy}, x at {sx}"
        );
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn multiple_blockers_all_get_pseudo_edges() {
        // Two independent 1-proc tasks finish simultaneously and jointly
        // release the 2 processors a waiting wide task needs: both must be
        // recorded as pseudo-predecessors in G'.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        let w = g.add_task("w", profiled(&[20.0, 10.0]));
        let _ = (a, b);
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::from_vec(vec![1, 1, 2]))
            .unwrap();
        let pseudo: Vec<_> = res
            .schedule_dag
            .edges()
            .filter(|(_, e)| e.kind == EdgeKind::Pseudo)
            .map(|(_, e)| (e.src, e.dst))
            .collect();
        assert_eq!(pseudo.len(), 2, "both finishers block w: {pseudo:?}");
        assert!(pseudo.iter().all(|&(_, dst)| dst == w));
        assert!((res.makespan - 20.0).abs() < 1e-9);
    }

    /// Figure 1 with every time scaled by 1e8: the pseudo-edge blocker test
    /// compares `o.finish` to the placement start under a tolerance bounded
    /// by the interval lengths, so makespans in the 1e9 range must produce
    /// exactly the same serialization (a purely relative eps would be ~1e3
    /// here — wide enough to misattribute blockers).
    #[test]
    fn fig1_pseudo_edges_survive_large_time_scales() {
        const S: f64 = 1.0e8;
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", profiled(&[40.0 * S, 20.0 * S, 13.3 * S, 10.0 * S]));
        let t2 = g.add_task("T2", profiled(&[21.0 * S, 10.5 * S, 7.0 * S]));
        let t3 = g.add_task("T3", profiled(&[10.0 * S, 5.0 * S]));
        let t4 = g.add_task("T4", profiled(&[32.0 * S, 16.0 * S, 10.7 * S, 8.0 * S]));
        g.add_edge(t1, t2, 0.0).unwrap();
        g.add_edge(t1, t3, 0.0).unwrap();
        g.add_edge(t2, t4, 0.0).unwrap();
        g.add_edge(t3, t4, 0.0).unwrap();
        let cluster = Cluster::new(4, 12.5);
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        let res = locbs
            .run(&g, &Allocation::from_vec(vec![4, 3, 2, 4]))
            .unwrap();
        assert!(
            (res.makespan - 30.0 * S).abs() < 1.0,
            "got {}",
            res.makespan
        );
        let pseudo: Vec<_> = res
            .schedule_dag
            .edges()
            .filter(|(_, e)| e.kind == EdgeKind::Pseudo)
            .map(|(_, e)| (e.src, e.dst))
            .collect();
        assert_eq!(pseudo, vec![(t2, t3)]);
        res.schedule.validate(&g, &model).unwrap();
    }

    /// The multiple-blockers case at a 1e8 time scale: both simultaneous
    /// finishers must still be detected as pseudo-predecessors.
    #[test]
    fn multiple_blockers_survive_large_time_scales() {
        const S: f64 = 1.0e8;
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0 * S));
        let b = g.add_task("b", ExecutionProfile::linear(10.0 * S));
        let w = g.add_task("w", profiled(&[20.0 * S, 10.0 * S]));
        let _ = (a, b);
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::from_vec(vec![1, 1, 2]))
            .unwrap();
        let pseudo: Vec<_> = res
            .schedule_dag
            .edges()
            .filter(|(_, e)| e.kind == EdgeKind::Pseudo)
            .map(|(_, e)| (e.src, e.dst))
            .collect();
        assert_eq!(pseudo.len(), 2, "both finishers block w: {pseudo:?}");
        assert!(pseudo.iter().all(|&(_, dst)| dst == w));
        assert!((res.makespan - 20.0 * S).abs() < 1.0);
    }

    #[test]
    fn non_finite_execution_time_is_an_error_not_a_panic() {
        // seq ~1e308 with a large per-processor overhead overflows
        // time(2) to +inf; the scheduler must refuse the input instead of
        // feeding NaN/inf into priorities.
        let m = SpeedupModel::Linear.with_overhead(10.0).unwrap();
        let mut g = TaskGraph::new();
        let t = g.add_task("huge", ExecutionProfile::new(1.0e308, m).unwrap());
        assert!(
            g.task(t).profile.time(2).is_infinite(),
            "premise: time(2) overflows"
        );
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        match locbs.run(&g, &Allocation::from_vec(vec![2])) {
            Err(SchedError::NonFiniteTime { task, np: 2 }) => assert_eq!(task, t),
            other => panic!("expected NonFiniteTime, got {other:?}"),
        }
        // The same profile is fine at np = 1, where nothing overflows.
        assert!(locbs.run(&g, &Allocation::ones(1)).is_ok());
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(1.0));
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        assert!(matches!(
            locbs.run(&g, &Allocation::ones(5)),
            Err(SchedError::AllocationMismatch { .. })
        ));
        assert!(matches!(
            locbs.run(&g, &Allocation::from_vec(vec![3])),
            Err(SchedError::AllocationTooWide { task, np: 3, p: 2 }) if task == a
        ));
    }

    #[test]
    fn run_into_with_reused_scratch_matches_fresh_runs() {
        // One dag + scratch carried across differently-shaped allocations
        // must behave exactly like a fresh `run` every time — including the
        // pseudo-edges left in the dag.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", profiled(&[30.0, 16.0, 9.0, 6.0]));
        let b = g.add_task("b", profiled(&[24.0, 13.0, 8.0, 6.5]));
        let c = g.add_task("c", profiled(&[28.0, 15.0, 9.0, 7.0]));
        let d = g.add_task("d", profiled(&[20.0, 11.0, 7.0, 5.5]));
        g.add_edge(a, b, 300.0).unwrap();
        g.add_edge(a, c, 10.0).unwrap();
        g.add_edge(b, d, 250.0).unwrap();
        g.add_edge(c, d, 10.0).unwrap();
        let cluster = Cluster::new(4, 12.5);
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        let mut dag = g.clone();
        let mut scratch = LocbsScratch::new();
        for alloc in [
            Allocation::ones(4),
            Allocation::from_vec(vec![2, 1, 3, 4]),
            Allocation::from_vec(vec![4, 4, 4, 4]),
            Allocation::from_vec(vec![1, 3, 1, 2]),
        ] {
            let fresh = locbs.run(&g, &alloc).unwrap();
            let (schedule, makespan) = locbs.run_into(&mut dag, &alloc, &mut scratch).unwrap();
            assert_eq!(schedule, fresh.schedule);
            assert_eq!(makespan, fresh.makespan);
            assert_eq!(dag, fresh.schedule_dag);
        }
    }

    #[test]
    fn comm_blind_schedule_ignores_volumes() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        g.add_edge(a, b, 10_000.0).unwrap();
        let cluster = Cluster::new(2, 12.5);
        let blind = CommModel::blind(&cluster);
        let res = Locbs::new(blind, LocbsOptions::default())
            .run(&g, &Allocation::ones(2))
            .unwrap();
        assert!(
            (res.makespan - 20.0).abs() < 1e-9,
            "blind model sees no transfer"
        );
    }
}
