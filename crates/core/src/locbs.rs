//! **LoCBS** — Locality Conscious Backfill Scheduling (Algorithm 2).
//!
//! Given a task graph and a processor allocation `np(t)`, LoCBS decides
//! *which* processors each task runs on and *when*:
//!
//! 1. ready tasks are served in priority order — highest
//!    `bottomL(t) + max_{e into t} wt(e)` first;
//! 2. for the chosen task, every *hole* of the 2-D resource chart that can
//!    hold `np(t)` processors is examined (backfilling); within each hole
//!    the processor subset with **maximum locality** for the task's input
//!    data is selected, the redistribution completion time is computed with
//!    the exact block-cyclic single-port model, and the placement with the
//!    **minimum finish time** wins;
//! 3. if the task starts later than its earliest (data-ready) start time,
//!    zero-weight *pseudo-edges* from the tasks that block it are added to
//!    a copy of the graph — the resulting *schedule-DAG* `G'` is what
//!    LoC-MPS computes critical paths on.
//!
//! The *no-backfill* variant (Figure 6's ablation) keeps only the last free
//! time of each processor instead of enumerating holes.

use locmps_platform::CommOverlap;
use locmps_taskgraph::{TaskGraph, TaskId};

use crate::allocation::Allocation;
use crate::commcost::CommModel;
use crate::locality::{input_locality_scores, select_max_locality};
use crate::schedule::{time_eps, Schedule, ScheduledTask};
use crate::scheduler::SchedError;
use crate::timeline::Timeline;

/// LoCBS configuration.
#[derive(Debug, Clone, Copy)]
pub struct LocbsOptions {
    /// `true`: full backfilling over schedule holes (the paper's default).
    /// `false`: the cheaper last-free-time variant of Figure 6.
    pub backfill: bool,
}

impl Default for LocbsOptions {
    fn default() -> Self {
        Self { backfill: true }
    }
}

/// Output of one LoCBS run.
#[derive(Debug, Clone)]
pub struct LocbsResult {
    /// Placement and timing for every task.
    pub schedule: Schedule,
    /// `G'`: the input graph plus pseudo-edges for induced dependences.
    pub schedule_dag: TaskGraph,
    /// The schedule length (== `schedule.makespan()`).
    pub makespan: f64,
}

/// The LoCBS scheduler: maps an (graph, allocation) pair to a schedule.
#[derive(Debug, Clone, Copy)]
pub struct Locbs<'a> {
    model: CommModel<'a>,
    opts: LocbsOptions,
}

/// One candidate placement under evaluation.
struct Placement {
    start: f64,
    compute_start: f64,
    finish: f64,
    procs: locmps_platform::ProcSet,
}

impl<'a> Locbs<'a> {
    /// Creates a scheduler over the given communication model.
    pub fn new(model: CommModel<'a>, opts: LocbsOptions) -> Self {
        Self { model, opts }
    }

    /// Runs Algorithm 2.
    ///
    /// # Errors
    /// Fails when the graph is invalid, the allocation vector does not
    /// cover the graph, or some `np(t)` exceeds the cluster size.
    pub fn run(&self, g: &TaskGraph, alloc: &Allocation) -> Result<LocbsResult, SchedError> {
        g.validate().map_err(SchedError::Graph)?;
        let p_total = self.model.cluster().n_procs;
        if alloc.len() != g.n_tasks() {
            return Err(SchedError::AllocationMismatch { expected: g.n_tasks(), got: alloc.len() });
        }
        for t in g.task_ids() {
            if alloc.np(t) > p_total {
                return Err(SchedError::AllocationTooWide { task: t, np: alloc.np(t), p: p_total });
            }
        }

        // Static priorities: bottom level + heaviest in-edge estimate
        // (Algorithm 2, step 4).
        let levels = g.levels(
            |t| g.task(t).profile.time(alloc.np(t)),
            |e| self.model.edge_estimate(g, alloc, e),
        );
        let priority: Vec<f64> = g
            .task_ids()
            .map(|t| {
                let heaviest_in = g
                    .in_edges(t)
                    .map(|e| self.model.edge_estimate(g, alloc, e))
                    .fold(0.0f64, f64::max);
                levels.bottom[t.index()] + heaviest_in
            })
            .collect();

        let mut schedule_dag = g.clone();
        let mut timeline = Timeline::new(p_total);
        let mut placed: Vec<Option<ScheduledTask>> = vec![None; g.n_tasks()];
        let mut remaining_preds: Vec<usize> =
            g.task_ids().map(|t| g.in_degree(t)).collect();
        let mut ready: Vec<TaskId> =
            g.task_ids().filter(|&t| remaining_preds[t.index()] == 0).collect();

        while let Some(pos) = pick_highest_priority(&ready, &priority) {
            let t = ready.swap_remove(pos);
            let placement = self.place(g, alloc, t, &placed, &timeline);
            timeline.occupy(&placement.procs, placement.start, placement.finish);

            // Pseudo-edges: the task is resource-blocked when it occupies
            // its processors later than its earliest start time (est).
            let est = self.earliest_start(g, t, &placed, &placement);
            if placement.start > est + time_eps(placement.start) {
                for (other_idx, other) in placed.iter().enumerate() {
                    if let Some(o) = other {
                        if (o.finish - placement.start).abs() <= time_eps(placement.start)
                            && !o.procs.is_disjoint(&placement.procs)
                        {
                            schedule_dag
                                .add_pseudo_edge(TaskId(other_idx as u32), t)
                                .expect("pseudo edge endpoints exist");
                        }
                    }
                }
            }

            placed[t.index()] = Some(ScheduledTask {
                task: t,
                procs: placement.procs,
                start: placement.start,
                compute_start: placement.compute_start,
                finish: placement.finish,
            });
            for s in g.successors(t) {
                remaining_preds[s.index()] -= 1;
                if remaining_preds[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }

        let entries: Vec<ScheduledTask> =
            placed.into_iter().map(|e| e.expect("DAG guarantees all tasks schedule")).collect();
        let schedule = Schedule::from_entries(entries);
        let makespan = schedule.makespan();
        debug_assert!(schedule_dag.validate().is_ok(), "pseudo edges must keep G' acyclic");
        Ok(LocbsResult { schedule, schedule_dag, makespan })
    }

    /// The earliest start time `est(t) = max(ft(t0) + ct(t0, t))` given the
    /// *chosen* placement (used only for the pseudo-edge test).
    fn earliest_start(
        &self,
        g: &TaskGraph,
        t: TaskId,
        placed: &[Option<ScheduledTask>],
        placement: &Placement,
    ) -> f64 {
        let mut est = 0.0f64;
        for e in g.in_edges(t) {
            let edge = g.edge(e);
            let src = placed[edge.src.index()].as_ref().expect("parents are scheduled first");
            let ct = match self.model.cluster().overlap {
                CommOverlap::Full => {
                    self.model.transfer_time(&src.procs, &placement.procs, edge.volume)
                }
                // Under no-overlap the transfer happens inside the task's
                // own occupancy window, so data readiness is parent finish.
                CommOverlap::None => 0.0,
            };
            est = est.max(src.finish + ct);
        }
        est
    }

    /// Finds the minimum-finish-time placement for `t` (Algorithm 2, steps
    /// 5–16), backfilling over holes or, in the no-backfill variant, after
    /// the last free times only.
    fn place(
        &self,
        g: &TaskGraph,
        alloc: &Allocation,
        t: TaskId,
        placed: &[Option<ScheduledTask>],
        timeline: &Timeline,
    ) -> Placement {
        let np = alloc.np(t);
        let et = g.task(t).profile.time(np);
        let p_total = self.model.cluster().n_procs;
        let data_ready = g
            .in_edges(t)
            .map(|e| placed[g.edge(e).src.index()].as_ref().expect("parents first").finish)
            .fold(0.0f64, f64::max);
        let scores = input_locality_scores(g, t, p_total, |p| {
            placed[p.index()].as_ref().expect("parents first").procs.clone()
        });

        let candidates: Vec<f64> = if self.opts.backfill {
            timeline.candidate_times(data_ready)
        } else {
            // No-backfill: the only start considered is after the last free
            // time of the selected processors; seed with the global horizon
            // candidates computed from last-free-times.
            let mut times: Vec<f64> = (0..p_total as u32)
                .map(|p| timeline.last_free_time(p).max(data_ready))
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).unwrap());
            times.dedup_by(|a, b| (*a - *b).abs() <= time_eps(*a));
            times
        };

        let mut best: Option<Placement> = None;
        for &s in &candidates {
            if let Some(b) = &best {
                if s >= b.finish {
                    break; // no later hole can finish earlier
                }
            }
            let free = if self.opts.backfill {
                timeline.free_set(s, s + et)
            } else {
                // Only processors whose last booking has ended are eligible
                // — holes are invisible to this variant.
                (0..p_total as u32).filter(|&p| timeline.last_free_time(p) <= s + time_eps(s)).collect()
            };
            if free.len() < np {
                continue;
            }
            let Some(procs) = select_max_locality(&free, np, &scores) else { continue };

            let (start, compute_start, finish) = match self.model.cluster().overlap {
                CommOverlap::Full => {
                    // Redistribution completion time on this subset.
                    let mut rct = data_ready;
                    for e in g.in_edges(t) {
                        let edge = g.edge(e);
                        let src = placed[edge.src.index()].as_ref().expect("parents first");
                        let ct = self.model.transfer_time(&src.procs, &procs, edge.volume);
                        rct = rct.max(src.finish + ct);
                    }
                    let st = s.max(rct);
                    (st, st, st + et)
                }
                CommOverlap::None => {
                    // Inbound transfers serialize inside the occupancy
                    // window (single-port at the receiver).
                    let mut comm_total = 0.0;
                    for e in g.in_edges(t) {
                        let edge = g.edge(e);
                        let src = placed[edge.src.index()].as_ref().expect("parents first");
                        comm_total += self.model.transfer_time(&src.procs, &procs, edge.volume);
                    }
                    let st = s.max(data_ready);
                    (st, st + comm_total, st + comm_total + et)
                }
            };

            // The window guess was [s, s+et); the real occupancy may have
            // shifted or grown — verify it on the actual interval.
            let feasible = procs.iter().all(|p| {
                if self.opts.backfill {
                    timeline.is_free(p, start, finish)
                } else {
                    timeline.last_free_time(p) <= start + time_eps(start)
                }
            });
            if !feasible {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => {
                    finish < b.finish - time_eps(finish)
                        || ((finish - b.finish).abs() <= time_eps(finish) && start < b.start)
                }
            };
            if better {
                best = Some(Placement { start, compute_start, finish, procs });
            }
        }
        best.expect("the all-free horizon candidate always fits")
    }
}

/// Index of the highest-priority ready task (ties toward lower task id).
fn pick_highest_priority(ready: &[TaskId], priority: &[f64]) -> Option<usize> {
    ready
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            priority[a.index()]
                .partial_cmp(&priority[b.index()])
                .unwrap()
                .then(b.cmp(a)) // lower id wins ties
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_platform::Cluster;
    use locmps_speedup::{ExecutionProfile, ProfiledSpeedup, SpeedupModel};
    use locmps_taskgraph::EdgeKind;

    fn profiled(times: &[f64]) -> ExecutionProfile {
        ExecutionProfile::new(times[0], SpeedupModel::Table(ProfiledSpeedup::from_times(times).unwrap()))
            .unwrap()
    }

    /// Figure 1: T1 -> {T2, T3} -> T4 on 4 processors with the allocation
    /// of Fig 1(b); T2 and T3 get serialized, yielding makespan 30 and a
    /// pseudo-edge between them.
    #[test]
    fn fig1_pseudo_edges_and_makespan() {
        let mut g = TaskGraph::new();
        // et on the allocated counts: T1: 10 on 4, T2: 7 on 3, T3: 5 on 2,
        // T4: 8 on 4. Fill profiles so time(np) matches.
        let t1 = g.add_task("T1", profiled(&[40.0, 20.0, 13.3, 10.0]));
        let t2 = g.add_task("T2", profiled(&[21.0, 10.5, 7.0]));
        let t3 = g.add_task("T3", profiled(&[10.0, 5.0]));
        let t4 = g.add_task("T4", profiled(&[32.0, 16.0, 10.7, 8.0]));
        g.add_edge(t1, t2, 0.0).unwrap();
        g.add_edge(t1, t3, 0.0).unwrap();
        g.add_edge(t2, t4, 0.0).unwrap();
        g.add_edge(t3, t4, 0.0).unwrap();
        let cluster = Cluster::new(4, 12.5);
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        let alloc = Allocation::from_vec(vec![4, 3, 2, 4]);
        let res = locbs.run(&g, &alloc).unwrap();
        assert!((res.makespan - 30.0).abs() < 1e-9, "paper reports 30, got {}", res.makespan);
        // T2 (3 procs) and T3 (2 procs) cannot coexist on 4 processors:
        // exactly one pseudo-edge between them must appear in G'.
        let pseudo: Vec<_> = res
            .schedule_dag
            .edges()
            .filter(|(_, e)| e.kind == EdgeKind::Pseudo)
            .map(|(_, e)| (e.src, e.dst))
            .collect();
        assert_eq!(pseudo, vec![(t2, t3)]);
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn independent_tasks_run_concurrently() {
        let mut g = TaskGraph::new();
        g.add_task("a", ExecutionProfile::linear(10.0));
        g.add_task("b", ExecutionProfile::linear(10.0));
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::ones(2))
            .unwrap();
        assert!((res.makespan - 10.0).abs() < 1e-9);
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn backfill_uses_holes_that_no_backfill_wastes() {
        // Wide task W (2 procs) forced to wait for chain head H; a small
        // independent task S fits in the hole next to H under backfill.
        //   H(1p, 10s) -> W(2p, 10s);  S(1p, 8s) independent.
        let mut g = TaskGraph::new();
        let h = g.add_task("H", ExecutionProfile::linear(10.0));
        let w = g.add_task("W", profiled(&[20.0, 10.0]));
        let s = g.add_task("S", ExecutionProfile::linear(8.0));
        g.add_edge(h, w, 0.0).unwrap();
        let _ = s;
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let alloc = Allocation::from_vec(vec![1, 2, 1]);
        let with = Locbs::new(model, LocbsOptions { backfill: true }).run(&g, &alloc).unwrap();
        let without = Locbs::new(model, LocbsOptions { backfill: false }).run(&g, &alloc).unwrap();
        // Backfill: S runs beside H during [0,8); W at [10,20): makespan 20.
        assert!((with.makespan - 20.0).abs() < 1e-9, "got {}", with.makespan);
        // Priorities put H (bottom level 20) first, then W, then S; the
        // no-backfill variant can only append S after W: makespan 28.
        assert!(without.makespan >= 27.9, "got {}", without.makespan);
        with.schedule.validate(&g, &model).unwrap();
        without.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn locality_pulls_consumer_onto_producer_procs() {
        // a on some proc produces 100 MB for b; placing b on a's processor
        // avoids the transfer entirely.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        let c = g.add_task("c", ExecutionProfile::linear(10.0));
        g.add_edge(a, b, 100.0).unwrap();
        let _ = c;
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::ones(3))
            .unwrap();
        let pa = &res.schedule.get(a).unwrap().procs;
        let pb = &res.schedule.get(b).unwrap().procs;
        assert_eq!(pa, pb, "consumer should follow its data");
        assert!((res.makespan - 20.0).abs() < 1e-9);
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn no_overlap_reserves_comm_window() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        // Force a transfer by occupying a's processor with a filler chain so
        // locality can't collapse them... simpler: two procs, volume large,
        // but locality makes b land on a's proc and transfer vanishes. To
        // exercise the window we pin np(b)=2 so b must span both procs.
        g.add_edge(a, b, 125.0).unwrap();
        let cluster = Cluster::new(2, 12.5).without_overlap();
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::from_vec(vec![1, 2]))
            .unwrap();
        let eb = res.schedule.get(b).unwrap();
        assert!(eb.compute_start > eb.start, "comm window must be reserved");
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn priority_includes_heaviest_in_edge() {
        // Two consumers with identical bottom levels; y's inbound transfer
        // is far heavier, so Algorithm 2's priority (bottomL + heaviest
        // in-edge) must serve y first — it lands on the single free
        // processor at its data-ready time, x queues behind it.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let x = g.add_task("x", ExecutionProfile::linear(10.0));
        let y = g.add_task("y", ExecutionProfile::linear(10.0));
        g.add_edge(a, x, 1.0).unwrap();
        g.add_edge(a, y, 500.0).unwrap();
        let cluster = Cluster::new(1, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::ones(3))
            .unwrap();
        let sx = res.schedule.get(x).unwrap().compute_start;
        let sy = res.schedule.get(y).unwrap().compute_start;
        assert!(
            sy < sx,
            "heavy-in-edge task must be prioritized: y at {sy}, x at {sx}"
        );
        res.schedule.validate(&g, &model).unwrap();
    }

    #[test]
    fn multiple_blockers_all_get_pseudo_edges() {
        // Two independent 1-proc tasks finish simultaneously and jointly
        // release the 2 processors a waiting wide task needs: both must be
        // recorded as pseudo-predecessors in G'.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        let w = g.add_task("w", profiled(&[20.0, 10.0]));
        let _ = (a, b);
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let res = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::from_vec(vec![1, 1, 2]))
            .unwrap();
        let pseudo: Vec<_> = res
            .schedule_dag
            .edges()
            .filter(|(_, e)| e.kind == EdgeKind::Pseudo)
            .map(|(_, e)| (e.src, e.dst))
            .collect();
        assert_eq!(pseudo.len(), 2, "both finishers block w: {pseudo:?}");
        assert!(pseudo.iter().all(|&(_, dst)| dst == w));
        assert!((res.makespan - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(1.0));
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        assert!(matches!(
            locbs.run(&g, &Allocation::ones(5)),
            Err(SchedError::AllocationMismatch { .. })
        ));
        assert!(matches!(
            locbs.run(&g, &Allocation::from_vec(vec![3])),
            Err(SchedError::AllocationTooWide { task, np: 3, p: 2 }) if task == a
        ));
    }

    #[test]
    fn comm_blind_schedule_ignores_volumes() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        g.add_edge(a, b, 10_000.0).unwrap();
        let cluster = Cluster::new(2, 12.5);
        let blind = CommModel::blind(&cluster);
        let res = Locbs::new(blind, LocbsOptions::default())
            .run(&g, &Allocation::ones(2))
            .unwrap();
        assert!((res.makespan - 20.0).abs() < 1e-9, "blind model sees no transfer");
    }
}
