//! The paper's contribution: **LoC-MPS**, a locality conscious processor
//! allocation and scheduling algorithm for mixed-parallel applications
//! (Vydyanathan et al., IEEE CLUSTER 2006, §III), together with its
//! **LoCBS** locality-conscious backfill scheduler.
//!
//! ## Module map
//!
//! * [`allocation`] — per-task processor counts `np(t)` and area accounting;
//! * [`schedule`] — the [`Schedule`] produced by every scheduler in this
//!   workspace, its validity checker and a text Gantt renderer;
//! * [`commcost`] — the communication-cost model: the paper's aggregate
//!   estimate for planning and the exact block-cyclic single-port transfer
//!   time for placement, with a *communication-blind* switch that turns the
//!   whole model off (that switch **is** the iCASLB baseline of §IV);
//! * [`timeline`] — the 2-D (processors × time) resource chart with hole
//!   enumeration for backfilling;
//! * [`locality`] — scoring of candidate processors by resident input data;
//! * [`locbs`] — Algorithm 2: priority-driven, locality-conscious backfill
//!   scheduling, producing the schedule plus the pseudo-edge schedule-DAG;
//! * [`locmps`] — Algorithm 1: the iterative allocation refinement with
//!   computation/communication domination, best-candidate selection
//!   (execution-time gain + concurrency ratio), heaviest-edge widening,
//!   bounded look-ahead and marking;
//! * [`bounds`] — simple makespan lower bounds used by tests and reports.
#![deny(missing_docs)]

pub mod allocation;
pub mod bounds;
pub mod commcost;
pub mod invariant;
pub mod locality;
pub mod locbs;
pub mod locmps;
pub mod residual;
pub mod schedule;
pub mod timeline;

mod scheduler;

pub use allocation::Allocation;
pub use bounds::{allocation_lower_bound, makespan_lower_bound, WideningBounds};
pub use commcost::{CommModel, EstimateCache};
pub use locbs::{Locbs, LocbsOptions, LocbsResult, LocbsScratch};
pub use locmps::{LocMps, LocMpsConfig};
pub use residual::ResidualDag;
pub use schedule::{GanttOptions, Schedule, ScheduleError, ScheduledTask};
pub use scheduler::{SchedError, Scheduler, SchedulerOutput, SearchCounters};

#[cfg(test)]
mod paper_figures;
#[cfg(test)]
mod proptests;
