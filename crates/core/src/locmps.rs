//! **LoC-MPS** — the iterative allocation-and-scheduling loop (Algorithm 1).
//!
//! Starting from the pure task-parallel allocation, each iteration:
//!
//! 1. computes the critical path of the *schedule-DAG* `G'` (the graph plus
//!    pseudo-edges from the last LoCBS run) under the current allocation;
//! 2. if computation dominates the CP, widens the **best candidate task**:
//!    among the CP tasks still widenable (`np < min(P, Pbest)`), rank by
//!    execution-time gain `et(np) − et(np+1)`, inspect the top fraction,
//!    and take the one with the lowest *concurrency ratio* (§III.C);
//! 3. otherwise widens the narrower endpoint of the **heaviest CP edge**
//!    (both endpoints when tied), raising its aggregate transfer bandwidth
//!    (§III.D);
//! 4. re-schedules with LoCBS and tracks the best makespan seen.
//!
//! A **bounded look-ahead** (default depth 20, §III.E) lets the search walk
//! through temporarily worse schedules; if a look-ahead fails to improve,
//! its entry point is **marked** and skipped by future searches; a success
//! commits the allocation and unmarks everything.
//!
//! At scale the dominant cost is the LoCBS passes run inside look-ahead
//! branches. Three *provably lossless* accelerations cut that work while
//! keeping every schedule bit-identical ([`LocMpsConfig::prune`] and
//! [`LocMpsConfig::bounded_probes`], both on by default):
//!
//! * look-ahead branches whose widening-cone lower bound
//!   ([`crate::bounds::WideningBounds`]) already reaches the incumbent
//!   makespan are skipped — valid because refinement moves only ever
//!   *widen* allocations, so every state a branch can visit lies in the
//!   cone the bound covers;
//! * a branch walk stops early once the cone bound of its current
//!   allocation reaches the branch's own best makespan;
//! * corner-restart probes are bound-checked and then run under a bounded
//!   horizon ([`Locbs::run_into_bounded`]): placements are final, so the
//!   first one past the incumbent aborts the pass.
//!
//! Deterministic [`SearchCounters`] in the output report the work done and
//! the work skipped; they are pure functions of the input, never of thread
//! timing, so CI pins their exact values.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use locmps_platform::Cluster;
use locmps_taskgraph::{ConcurrencyInfo, CriticalPath, EdgeId, EdgeKind, TaskGraph, TaskId};

use crate::allocation::Allocation;
use crate::bounds::{allocation_lower_bound, WideningBounds};
use crate::commcost::CommModel;
use crate::locbs::{Locbs, LocbsOptions, LocbsResult, LocbsScratch};
use crate::schedule::time_eps;
use crate::scheduler::{SchedError, Scheduler, SchedulerOutput, SearchCounters};

/// Tunables of Algorithm 1. [`Default`] reproduces the paper's settings.
#[derive(Debug, Clone, Copy)]
pub struct LocMpsConfig {
    /// Look-ahead bound (paper: "a bound of 20 iterations was found to
    /// yield good results").
    pub lookahead_depth: usize,
    /// Fraction of top-gain CP tasks inspected for the concurrency-ratio
    /// tie-break (paper: 10 %).
    pub top_fraction: f64,
    /// Lower bound on how many top-gain tasks are inspected (default 1 —
    /// the paper's literal `⌈10 %⌉` rule, which on the short critical
    /// paths of 10–50-task graphs inspects a single task, i.e. pure
    /// max-gain almost everywhere). Raising it widens the
    /// concurrency-ratio tie-break's influence (the Figure 2 rationale);
    /// ablations show values > 1 hurt on random DAGs because `cr` is a
    /// static, structure-only metric.
    pub inspect_at_least: usize,
    /// Schedule with full backfilling (`true`, the paper's default) or the
    /// cheaper last-free-time variant (Figure 6's ablation).
    pub backfill: bool,
    /// `false` turns off the communication model entirely — that is the
    /// **iCASLB** baseline [4], which this paper extends.
    pub comm_aware: bool,
    /// Hard cap on outer commit/mark rounds (safety net; the algorithm
    /// terminates on its own, this guards against pathological inputs).
    pub max_rounds: usize,
    /// Probe the uniform "data-parallel corner" allocations (`np = P, P/2,
    /// P/4`, clamped per task by `Pbest`) and re-run the search from any
    /// that beats the committed solution. An extension of the paper's
    /// Figure 3 argument: the bounded look-ahead is meant to reach the
    /// data-parallel optimum, but on larger graphs at high CCR the valley
    /// can exceed any fixed depth.
    pub corner_starts: bool,
    /// Number of look-ahead entry points explored concurrently per round
    /// (default 1 = the paper's sequential Algorithm 1). Values > 1
    /// implement the paper's future-work item §VI(1), "developing
    /// strategies to parallelize the scheduling algorithm": the top-ranked
    /// candidates each get their own look-ahead on a rayon worker, the
    /// best outcome is committed, and a fruitless round marks every tried
    /// entry at once.
    pub parallel_entries: usize,
    /// Skip search work an admissible lower bound proves fruitless: entry
    /// branches whose widening-cone bound cannot beat the incumbent,
    /// branch walks whose cone bound reaches the branch's own best, corner
    /// probes bounded below the incumbent, and whole searches whose
    /// incumbent already sits on its cone bound. Lossless — the schedule,
    /// allocation and schedule-DAG are bit-identical either way — so this
    /// defaults to on; `false` exists as the reference for the equivalence
    /// property tests and for measuring the pruning win itself.
    pub prune: bool,
    /// Run corner-restart probes under a bounded horizon
    /// ([`Locbs::run_into_bounded`]) so they abort at the first placement
    /// past the incumbent instead of finishing a schedule that already
    /// lost. Equally lossless; `false` is the measurement reference.
    pub bounded_probes: bool,
}

impl Default for LocMpsConfig {
    fn default() -> Self {
        Self {
            lookahead_depth: 20,
            top_fraction: 0.10,
            inspect_at_least: 1,
            backfill: true,
            comm_aware: true,
            max_rounds: 10_000,
            corner_starts: true,
            parallel_entries: 1,
            prune: true,
            bounded_probes: true,
        }
    }
}

impl LocMpsConfig {
    /// The iCASLB baseline configuration: LoC-MPS with the communication
    /// model disabled.
    pub fn icaslb() -> Self {
        Self {
            comm_aware: false,
            ..Self::default()
        }
    }

    /// Greedy configuration (no look-ahead, no corner restarts): only
    /// strictly improving moves are kept — used to demonstrate the
    /// Figure 3 local-minimum trap.
    pub fn greedy() -> Self {
        Self {
            lookahead_depth: 1,
            corner_starts: false,
            ..Self::default()
        }
    }

    /// No-backfill ablation (Figure 6).
    pub fn no_backfill() -> Self {
        Self {
            backfill: false,
            ..Self::default()
        }
    }

    /// The exhaustive reference: no bound-driven pruning, no bounded
    /// probes. Produces bit-identical schedules to [`Default`] while doing
    /// every LoCBS pass in full — the baseline the equivalence property
    /// tests and the `BENCH_locmps` report compare against.
    pub fn exhaustive() -> Self {
        Self {
            prune: false,
            bounded_probes: false,
            ..Self::default()
        }
    }
}

/// What a look-ahead search started from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Entry {
    Task(TaskId),
    Edge(EdgeId),
}

/// Shared tally behind the [`SearchCounters`] snapshot. Branches running on
/// pool workers bump these concurrently; every increment is a deterministic
/// function of the scheduling input (never of thread timing), so relaxed
/// ordering cannot perturb the totals.
#[derive(Debug, Default)]
struct AtomicCounters {
    locbs_passes: AtomicU64,
    probes_aborted: AtomicU64,
    branches_pruned: AtomicU64,
    lookahead_cutoffs: AtomicU64,
    pass_memo_hits: AtomicU64,
    pool_tasks: AtomicU64,
    commits: AtomicU64,
}

impl AtomicCounters {
    fn bump(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SearchCounters {
        SearchCounters {
            locbs_passes: self.locbs_passes.load(Ordering::Relaxed),
            probes_aborted: self.probes_aborted.load(Ordering::Relaxed),
            branches_pruned: self.branches_pruned.load(Ordering::Relaxed),
            lookahead_cutoffs: self.lookahead_cutoffs.load(Ordering::Relaxed),
            pass_memo_hits: self.pass_memo_hits.load(Ordering::Relaxed),
            pool_tasks: self.pool_tasks.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
        }
    }
}

/// One memoized LoCBS pass: everything a look-ahead step consumes.
struct MemoEntry {
    schedule: crate::schedule::Schedule,
    /// The pseudo-edges the pass added, in insertion order, so a hit can
    /// replay the exact schedule-DAG the pass would have left behind.
    pseudo: Vec<(TaskId, TaskId)>,
    makespan: f64,
}

/// Allocation-keyed memo of completed look-ahead passes.
///
/// [`Locbs::run_into`] strips all pseudo-edges on entry, so a pass is a
/// pure function of the data graph and the allocation — two branches that
/// reach the same allocation get the same schedule, the same makespan and
/// the same pseudo-edges. Failed look-ahead rounds re-walk the search
/// space from one incumbent with different entry points, and those walks
/// merge onto shared allocation trajectories after a step or two, so most
/// of their passes are replays.
///
/// Because hits are exact, entries never expire: commits move the
/// incumbent but the winning branch's tail states — and the restarts from
/// other corners — revisit earlier allocations constantly, so the memo is
/// kept for the whole search. Its footprint is bounded by the number of
/// distinct allocations placed, i.e. by the executed-pass counter the memo
/// itself keeps small. It is only consulted in sequential searches
/// (`parallel_entries == 1`, the default): under a shared memo, *which*
/// thread computes and which one hits would depend on scheduling, and the
/// [`SearchCounters`] promise — pure functions of the input — would break.
#[derive(Default)]
struct PassMemo {
    map: HashMap<Vec<usize>, MemoEntry>,
}

/// The immutable per-run context threaded through the search: the problem,
/// the placer, the precomputed metadata, the optional pruning bounds and
/// the work tally.
struct SearchCtx<'a> {
    g: &'a TaskGraph,
    locbs: &'a Locbs<'a>,
    conc: &'a ConcurrencyInfo,
    pbest: &'a [usize],
    model: &'a CommModel<'a>,
    p_total: usize,
    /// `Some` exactly when [`LocMpsConfig::prune`] is on.
    wb: Option<&'a WideningBounds>,
    /// `Some` exactly when the pass memo applies (pruning on and the
    /// search sequential); the mutex is uncontended in that case.
    memo: Option<&'a Mutex<PassMemo>>,
    counters: &'a AtomicCounters,
}

thread_local! {
    /// Per-worker look-ahead working set: one schedule-DAG buffer and one
    /// LoCBS scratch, reused by every branch a pool worker (or the caller
    /// thread) runs instead of allocating a fresh graph clone and scratch
    /// per branch. `clone_from` / `reset_for` re-arm them for the branch's
    /// graph, so buffers carried across graphs — or across schedulers on
    /// the same thread — are safe.
    static BRANCH_BUFFERS: RefCell<(TaskGraph, LocbsScratch)> =
        RefCell::new((TaskGraph::new(), LocbsScratch::new()));
}

/// The LoC-MPS scheduler.
#[derive(Debug, Clone, Default)]
pub struct LocMps {
    config: LocMpsConfig,
}

impl LocMps {
    /// Creates the scheduler with the given configuration.
    pub fn new(config: LocMpsConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocMpsConfig {
        &self.config
    }

    fn node_weight(g: &TaskGraph, alloc: &Allocation, t: TaskId) -> f64 {
        g.task(t).profile.time(alloc.np(t))
    }

    /// Best candidate task on the critical path (§III.C): filter widenable,
    /// rank by gain, inspect the top fraction, pick minimum concurrency
    /// ratio.
    #[allow(clippy::too_many_arguments)]
    fn best_candidate_task(
        &self,
        g: &TaskGraph,
        cp: &CriticalPath,
        alloc: &Allocation,
        conc: &ConcurrencyInfo,
        pbest: &[usize],
        p_total: usize,
        marked: Option<&HashSet<Entry>>,
    ) -> Option<TaskId> {
        let mut cands: Vec<(TaskId, f64)> = cp
            .tasks
            .iter()
            .copied()
            .filter(|&t| alloc.np(t) < p_total.min(pbest[t.index()]))
            .filter(|&t| marked.is_none_or(|m| !m.contains(&Entry::Task(t))))
            .map(|t| (t, g.task(t).profile.gain(alloc.np(t))))
            .collect();
        if cands.is_empty() {
            return None;
        }
        cands.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let k = ((self.config.top_fraction * cands.len() as f64).ceil() as usize)
            .max(self.config.inspect_at_least.max(1).min(cands.len()))
            .min(cands.len());
        cands[..k]
            .iter()
            .copied()
            .min_by(|a, b| {
                conc.ratio(a.0)
                    .total_cmp(&conc.ratio(b.0))
                    .then(b.1.total_cmp(&a.1))
                    .then(a.0.cmp(&b.0))
            })
            .map(|(t, _)| t)
    }

    /// Heaviest widenable data edge on the critical path (§III.D), weighed
    /// by the caller's edge-cost function.
    fn best_candidate_edge(
        &self,
        dag: &TaskGraph,
        cp: &CriticalPath,
        alloc: &Allocation,
        edge_w: impl Fn(EdgeId) -> f64,
        p_total: usize,
        marked: Option<&HashSet<Entry>>,
    ) -> Option<EdgeId> {
        cp.edges
            .iter()
            .copied()
            .filter(|&e| {
                let edge = dag.edge(e);
                edge.kind == EdgeKind::Data
                    && edge.volume > 0.0
                    && (alloc.np(edge.src) < p_total || alloc.np(edge.dst) < p_total)
            })
            .filter(|&e| marked.is_none_or(|m| !m.contains(&Entry::Edge(e))))
            .max_by(|&a, &b| {
                edge_w(a).total_cmp(&edge_w(b)).then(b.cmp(&a)) // lower id wins ties
            })
    }

    /// Widens the endpoints of edge `e` per Algorithm 1 steps 21–27: the
    /// narrower endpoint grows; both grow when tied.
    fn widen_edge(dag: &TaskGraph, alloc: &mut Allocation, e: EdgeId, p_total: usize) {
        let edge = dag.edge(e);
        use std::cmp::Ordering;
        match alloc.np(edge.src).cmp(&alloc.np(edge.dst)) {
            Ordering::Greater => alloc.widen(edge.dst, p_total),
            Ordering::Less => alloc.widen(edge.src, p_total),
            Ordering::Equal => {
                alloc.widen(edge.dst, p_total);
                alloc.widen(edge.src, p_total);
            }
        }
    }

    /// One refinement step on `alloc` guided by the CP of `dag`. Returns
    /// the entry describing what was widened, or `None` when nothing on the
    /// critical path can be refined.
    ///
    /// Edge weights are "the communication cost to redistribute data
    /// between the processor groups associated with each task/endpoint"
    /// (§III.B): the previous LoCBS pass decided those groups, so the cost
    /// is the exact single-port block-cyclic transfer time between them —
    /// an edge whose endpoints share a layout weighs nothing, exactly as
    /// it executes. (The paper's `d/(min(np)·bw)` closed form is the
    /// group-agnostic stand-in; it remains the planning estimate inside
    /// LoCBS's priorities where groups are not yet placed.)
    fn refine(
        &self,
        ctx: &SearchCtx<'_>,
        dag: &TaskGraph,
        schedule: &crate::schedule::Schedule,
        alloc: &mut Allocation,
        marked: Option<&HashSet<Entry>>,
    ) -> Option<Entry> {
        let (g, conc, pbest) = (ctx.g, ctx.conc, ctx.pbest);
        let (model, p_total) = (ctx.model, ctx.p_total);
        let edge_w = |e: EdgeId| {
            let edge = dag.edge(e);
            match (schedule.get(edge.src), schedule.get(edge.dst)) {
                (Some(s), Some(d)) => model.transfer_time(&s.procs, &d.procs, edge.volume),
                _ => model.edge_estimate(dag, alloc, e),
            }
        };
        let cp = dag.critical_path(|t| Self::node_weight(g, alloc, t), edge_w);
        let tcomp = cp.computation_cost(|t| Self::node_weight(g, alloc, t));
        let tcomm = cp.communication_cost(edge_w);

        if tcomp > tcomm {
            if let Some(t) = self.best_candidate_task(g, &cp, alloc, conc, pbest, p_total, marked) {
                alloc.widen(t, p_total);
                return Some(Entry::Task(t));
            }
        }
        if let Some(e) = self.best_candidate_edge(dag, &cp, alloc, edge_w, p_total, marked) {
            Self::widen_edge(dag, alloc, e, p_total);
            return Some(Entry::Edge(e));
        }
        // Communication dominated but no widenable edge: fall back to a
        // task candidate so compute-bound refinement can still proceed.
        if tcomp <= tcomm {
            if let Some(t) = self.best_candidate_task(g, &cp, alloc, conc, pbest, p_total, marked) {
                alloc.widen(t, p_total);
                return Some(Entry::Task(t));
            }
        }
        None
    }
}

impl Scheduler for LocMps {
    fn name(&self) -> &'static str {
        match (self.config.comm_aware, self.config.backfill) {
            (true, true) => "LoC-MPS",
            (true, false) => "LoC-MPS/no-backfill",
            (false, _) => "iCASLB",
        }
    }

    fn schedule(&self, g: &TaskGraph, cluster: &Cluster) -> Result<SchedulerOutput, SchedError> {
        self.schedule_with_scratch(g, cluster, &mut TaskGraph::new(), &mut LocbsScratch::new())
    }
}

impl LocMps {
    /// Runs a top-level LoCBS probe into caller-owned buffers.
    fn probe(
        ctx: &SearchCtx<'_>,
        alloc: &Allocation,
        dag_buf: &mut TaskGraph,
        scratch: &mut LocbsScratch,
    ) -> Result<LocbsResult, SchedError> {
        dag_buf.clone_from(ctx.g);
        let (schedule, makespan) = ctx.locbs.run_into(dag_buf, alloc, scratch)?;
        AtomicCounters::bump(&ctx.counters.locbs_passes, 1);
        Ok(LocbsResult {
            schedule,
            schedule_dag: dag_buf.clone(),
            makespan,
        })
    }

    /// [`Scheduler::schedule`] with caller-owned working memory.
    ///
    /// `dag_buf` and `scratch` are scratch space for the top-level LoCBS
    /// probes; holding them across calls lets a long-lived caller (the
    /// runtime's replanning recovery policy) schedule a *sequence* of
    /// graphs — shrinking residual DAGs over shrinking clusters — without
    /// re-allocating the LoCBS working set each time. The scratch is
    /// re-armed for `g` on entry, so any previous contents are safe to
    /// carry over. Results are identical to [`Scheduler::schedule`].
    ///
    /// # Errors
    /// Exactly those of [`Scheduler::schedule`].
    pub fn schedule_with_scratch(
        &self,
        g: &TaskGraph,
        cluster: &Cluster,
        dag_buf: &mut TaskGraph,
        scratch: &mut LocbsScratch,
    ) -> Result<SchedulerOutput, SchedError> {
        g.validate().map_err(SchedError::Graph)?;
        scratch.reset_for(g);
        let p_total = cluster.n_procs;
        let model = if self.config.comm_aware {
            CommModel::new(cluster)
        } else {
            CommModel::blind(cluster)
        };
        let locbs = Locbs::new(
            model,
            LocbsOptions {
                backfill: self.config.backfill,
            },
        );
        let conc = ConcurrencyInfo::compute(g);
        let pbest: Vec<usize> = g
            .task_ids()
            .map(|t| g.task(t).profile.pbest(p_total))
            .collect();
        let wb = self.config.prune.then(|| WideningBounds::new(g, p_total));
        let memo = (self.config.prune && self.config.parallel_entries.max(1) == 1)
            .then(Mutex::<PassMemo>::default);
        let counters = AtomicCounters::default();
        let ctx = SearchCtx {
            g,
            locbs: &locbs,
            conc: &conc,
            pbest: &pbest,
            model: &model,
            p_total,
            wb: wb.as_ref(),
            memo: memo.as_ref(),
            counters: &counters,
        };

        // Steps 1–4: pure task-parallel start.
        let mut best_alloc = Allocation::ones(g.n_tasks());
        let mut best: LocbsResult = Self::probe(&ctx, &best_alloc, dag_buf, scratch)?;
        self.search(&ctx, &mut best_alloc, &mut best)?;

        // Wide-corner restarts (extension, see `LocMpsConfig::corner_starts`):
        // Figure 3 shows the data-parallel corner can be the optimum and the
        // bounded look-ahead exists to reach it; on larger graphs at high
        // CCR the valley between the committed solution and that corner can
        // exceed the look-ahead depth, so the uniform allocations are probed
        // directly and the search re-run from any that wins.
        if self.config.corner_starts {
            for denom in [1usize, 2, 4] {
                let width = (p_total / denom).max(1);
                // Two flavours per width: the plain uniform allocation
                // (identical group layouts ⇒ zero redistribution, the DATA
                // corner proper) and the Pbest-clamped one (never give a
                // task more processors than help it, at the cost of some
                // layout misalignment).
                let plain = Allocation::uniform(g.n_tasks(), width);
                let mut clamped = plain.clone();
                for t in g.task_ids() {
                    clamped.set(t, width.min(pbest[t.index()]));
                }
                for alloc in [plain, clamped] {
                    // A corner only matters if its probe beats the incumbent
                    // by more than the commit epsilon. The allocation-level
                    // bound settles many corners without placing a single
                    // task; the rest run under a bounded horizon so the
                    // first placement past the incumbent aborts the pass.
                    // Both tests leave an epsilon of slack, so floating-
                    // point noise in the bound cannot veto a real winner.
                    if self.config.prune
                        && allocation_lower_bound(g, &alloc, p_total) >= best.makespan
                    {
                        AtomicCounters::bump(&counters.branches_pruned, 1);
                        continue;
                    }
                    let res = if self.config.bounded_probes {
                        let horizon = best.makespan - time_eps(best.makespan);
                        dag_buf.clone_from(g);
                        match locbs.run_into_bounded(dag_buf, &alloc, scratch, horizon)? {
                            Some((schedule, makespan)) => {
                                AtomicCounters::bump(&counters.locbs_passes, 1);
                                LocbsResult {
                                    schedule,
                                    schedule_dag: dag_buf.clone(),
                                    makespan,
                                }
                            }
                            None => {
                                AtomicCounters::bump(&counters.probes_aborted, 1);
                                continue;
                            }
                        }
                    } else {
                        Self::probe(&ctx, &alloc, dag_buf, scratch)?
                    };
                    if res.makespan < best.makespan - time_eps(best.makespan) {
                        let mut corner_alloc = alloc;
                        let mut corner_best = res;
                        self.search(&ctx, &mut corner_alloc, &mut corner_best)?;
                        if corner_best.makespan < best.makespan - time_eps(best.makespan) {
                            best_alloc = corner_alloc;
                            best = corner_best;
                        }
                    }
                }
            }
        }

        Ok(SchedulerOutput {
            schedule: best.schedule,
            allocation: best_alloc,
            schedule_dag: Some(best.schedule_dag),
            counters: counters.snapshot(),
        })
    }
}

impl LocMps {
    /// Applies one widening step described by `entry`.
    fn apply_entry(dag: &TaskGraph, alloc: &mut Allocation, entry: Entry, p_total: usize) {
        match entry {
            Entry::Task(t) => alloc.widen(t, p_total),
            Entry::Edge(e) => Self::widen_edge(dag, alloc, e, p_total),
        }
    }

    /// Ranked, unmarked look-ahead entry points at the current best state:
    /// the paper's single best candidate first, then the runners-up. With
    /// `k = 1` this is exactly Algorithm 1's entry choice; larger `k`
    /// feeds the parallel multi-entry look-ahead (the paper's future-work
    /// item §VI(1)).
    fn entry_candidates(
        &self,
        ctx: &SearchCtx<'_>,
        dag: &TaskGraph,
        schedule: &crate::schedule::Schedule,
        alloc: &Allocation,
        marked: &HashSet<Entry>,
        k: usize,
    ) -> Vec<Entry> {
        let (g, conc, pbest) = (ctx.g, ctx.conc, ctx.pbest);
        let (model, p_total) = (ctx.model, ctx.p_total);
        let edge_w = |e: EdgeId| {
            let edge = dag.edge(e);
            match (schedule.get(edge.src), schedule.get(edge.dst)) {
                (Some(s), Some(d)) => model.transfer_time(&s.procs, &d.procs, edge.volume),
                _ => model.edge_estimate(dag, alloc, e),
            }
        };
        let cp = dag.critical_path(|t| Self::node_weight(g, alloc, t), edge_w);
        let tcomp = cp.computation_cost(|t| Self::node_weight(g, alloc, t));
        let tcomm = cp.communication_cost(edge_w);

        // Task entries: gain order with the paper's min-concurrency-ratio
        // pick promoted to the front.
        let mut task_entries: Vec<Entry> = Vec::new();
        if let Some(primary) =
            self.best_candidate_task(g, &cp, alloc, conc, pbest, p_total, Some(marked))
        {
            task_entries.push(Entry::Task(primary));
            let mut rest: Vec<(TaskId, f64)> = cp
                .tasks
                .iter()
                .copied()
                .filter(|&t| t != primary)
                .filter(|&t| alloc.np(t) < p_total.min(pbest[t.index()]))
                .filter(|&t| !marked.contains(&Entry::Task(t)))
                .map(|t| (t, g.task(t).profile.gain(alloc.np(t))))
                .collect();
            rest.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            task_entries.extend(rest.into_iter().map(|(t, _)| Entry::Task(t)));
        }

        // Edge entries: descending actual weight.
        let mut edges: Vec<(EdgeId, f64)> = cp
            .edges
            .iter()
            .copied()
            .filter(|&e| {
                let edge = dag.edge(e);
                edge.kind == EdgeKind::Data
                    && edge.volume > 0.0
                    && (alloc.np(edge.src) < p_total || alloc.np(edge.dst) < p_total)
            })
            .filter(|&e| !marked.contains(&Entry::Edge(e)))
            .map(|e| (e, edge_w(e)))
            .collect();
        edges.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let edge_entries: Vec<Entry> = edges.into_iter().map(|(e, _)| Entry::Edge(e)).collect();

        // Whichever cost dominates the critical path goes first (step 14).
        let (first, second) = if tcomp > tcomm {
            (task_entries, edge_entries)
        } else {
            (edge_entries, task_entries)
        };
        first.into_iter().chain(second).take(k.max(1)).collect()
    }

    /// One bounded look-ahead trajectory (steps 10–35) forced to begin at
    /// `entry`. Returns the best (allocation, schedule) seen along the way.
    ///
    /// The branch borrows its worker's thread-local schedule-DAG buffer and
    /// LoCBS scratch ([`BRANCH_BUFFERS`]): every iteration re-schedules in
    /// place via [`Locbs::run_into`] (stripping the previous iteration's
    /// pseudo-edges instead of cloning the graph) with the edge-estimate
    /// memo carried across iterations — only edges incident to the
    /// just-widened task recompute. Branches never share a buffer, so the
    /// parallel multi-entry rounds stay safe.
    ///
    /// With pruning on, the walk stops as soon as the widening window of
    /// the current allocation provably cannot beat `branch_best`: each
    /// remaining refinement move widens some task by at most one processor,
    /// so [`WideningBounds::cone_bound_within`] at the remaining depth
    /// covers every state the rest of the walk could reach. Repeated
    /// allocations (branch walks merge quickly once they leave their entry
    /// point) are answered from the pass memo, and the final pass of a walk
    /// runs under a bounded horizon because nothing downstream consumes an
    /// over-horizon result.
    fn lookahead_branch(
        &self,
        ctx: &SearchCtx<'_>,
        start_alloc: &Allocation,
        start_dag: &TaskGraph,
        entry: Entry,
    ) -> Result<(Allocation, LocbsResult), SchedError> {
        let (g, p_total) = (ctx.g, ctx.p_total);
        let mut alloc = start_alloc.clone();
        Self::apply_entry(start_dag, &mut alloc, entry, p_total);
        BRANCH_BUFFERS.with(|buffers| {
            let (dag, scratch) = &mut *buffers.borrow_mut();
            dag.clone_from(g);
            scratch.reset_for(g);
            let (mut schedule, mut makespan) =
                match Self::branch_pass(ctx, &alloc, dag, scratch, None)? {
                    Some(pass) => pass,
                    None => unreachable!("an unbounded pass never aborts"),
                };
            let mut branch_alloc = alloc.clone();
            let mut branch_best = LocbsResult {
                schedule: schedule.clone(),
                schedule_dag: dag.clone(),
                makespan,
            };

            let depth = self.config.lookahead_depth.max(1);
            for step in 1..depth {
                if self.refine(ctx, dag, &schedule, &mut alloc, None).is_none() {
                    break;
                }
                if let Some(wb) = ctx.wb {
                    // `depth - 1 - step` refinement moves remain after this
                    // one, so the window cone covers this state and every
                    // state the rest of the walk can reach. At or above the
                    // branch best, none of them passes the epsilon-strict
                    // improvement test; the returned pair is already final.
                    if wb.cone_bound_within(g, &alloc, depth - 1 - step) >= branch_best.makespan {
                        AtomicCounters::bump(&ctx.counters.lookahead_cutoffs, 1);
                        break;
                    }
                }
                // The final pass feeds no further refinement: its only
                // consumer is the branch-best update, so it may run under
                // a bounded horizon and abort once that update is settled.
                let horizon = (self.config.bounded_probes && step + 1 == depth)
                    .then(|| branch_best.makespan - time_eps(branch_best.makespan));
                match Self::branch_pass(ctx, &alloc, dag, scratch, horizon)? {
                    Some(pass) => (schedule, makespan) = pass,
                    None => break,
                }
                if makespan < branch_best.makespan - time_eps(branch_best.makespan) {
                    branch_alloc = alloc.clone();
                    branch_best = LocbsResult {
                        schedule: schedule.clone(),
                        schedule_dag: dag.clone(),
                        makespan,
                    };
                }
            }
            Ok((branch_alloc, branch_best))
        })
    }

    /// One look-ahead LoCBS pass over the branch's buffers: replayed from
    /// the pass memo when this allocation was already placed this era,
    /// otherwise computed — under `horizon` when the caller can prove an
    /// over-horizon pass is useless. Returns `None` exactly on a horizon
    /// abort.
    fn branch_pass(
        ctx: &SearchCtx<'_>,
        alloc: &Allocation,
        dag: &mut TaskGraph,
        scratch: &mut LocbsScratch,
        horizon: Option<f64>,
    ) -> Result<Option<(crate::schedule::Schedule, f64)>, SchedError> {
        if let Some(memo) = ctx.memo {
            let guard = memo.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = guard.map.get(alloc.as_slice()) {
                dag.clear_pseudo_edges();
                for &(src, dst) in &hit.pseudo {
                    dag.add_pseudo_edge(src, dst).map_err(SchedError::Graph)?;
                }
                AtomicCounters::bump(&ctx.counters.pass_memo_hits, 1);
                return Ok(Some((hit.schedule.clone(), hit.makespan)));
            }
        }
        let result = match horizon {
            Some(h) => ctx.locbs.run_into_bounded(dag, alloc, scratch, h)?,
            None => Some(ctx.locbs.run_into(dag, alloc, scratch)?),
        };
        let Some((schedule, makespan)) = result else {
            AtomicCounters::bump(&ctx.counters.probes_aborted, 1);
            return Ok(None);
        };
        AtomicCounters::bump(&ctx.counters.locbs_passes, 1);
        if let Some(memo) = ctx.memo {
            let pseudo = dag
                .edges()
                .filter(|(_, e)| e.kind == EdgeKind::Pseudo)
                .map(|(_, e)| (e.src, e.dst))
                .collect();
            memo.lock().unwrap_or_else(|e| e.into_inner()).map.insert(
                alloc.as_slice().to_vec(),
                MemoEntry {
                    schedule: schedule.clone(),
                    pseudo,
                    makespan,
                },
            );
        }
        Ok(Some((schedule, makespan)))
    }

    /// The outer commit/mark loop of Algorithm 1, refining `best_alloc` /
    /// `best` in place from wherever they currently point. With
    /// `parallel_entries > 1` each round explores that many entry points
    /// concurrently (on the persistent worker pool) and commits the best
    /// outcome; a round in which no branch improves marks every tried
    /// entry.
    ///
    /// # Pruning, exactly
    ///
    /// Every prune below is backed by an admissible bound and leaves the
    /// commit/mark trajectory — and therefore the final schedule —
    /// bit-identical to the unpruned search:
    ///
    /// * **convergence exit**: every branch of every future round starts
    ///   from `best_alloc` and performs at most `lookahead_depth` widening
    ///   moves, so once `cone_bound_within(best_alloc, depth)` reaches
    ///   `best.makespan` no round can ever commit again; failed rounds only
    ///   touch `marked`, which is local, so returning now is observably
    ///   identical.
    /// * **trailing-suffix skip**: a branch whose entry bound reaches
    ///   `old_sl` can never pass the commit test, but it *can* still win
    ///   the epsilon-tolerant winner fold and thereby shield a later,
    ///   marginally-improving branch from committing. Skipping is
    ///   therefore only safe for the pruned entries *after* the last
    ///   unpruned one — exactly the suffix that has nobody left to shield.
    ///   (With `parallel_entries = 1`, the default, every pruned entry is
    ///   trailing.) Failed rounds still mark **all** candidate entries,
    ///   skipped or not, just as the unpruned search would.
    fn search(
        &self,
        ctx: &SearchCtx<'_>,
        best_alloc: &mut Allocation,
        best: &mut LocbsResult,
    ) -> Result<(), SchedError> {
        use rayon::prelude::*;

        let mut marked: HashSet<Entry> = HashSet::new();
        let width = self.config.parallel_entries.max(1);
        // A branch performs at most `depth` widening moves in total: the
        // entry application plus `depth - 1` refinement steps.
        let depth = self.config.lookahead_depth.max(1);

        for _round in 0..self.config.max_rounds {
            if let Some(wb) = ctx.wb {
                if wb.cone_bound_within(ctx.g, best_alloc, depth) >= best.makespan {
                    return Ok(()); // incumbent provably optimal in its cone
                }
            }
            let entries = self.entry_candidates(
                ctx,
                &best.schedule_dag,
                &best.schedule,
                best_alloc,
                &marked,
                width,
            );
            if entries.is_empty() {
                return Ok(()); // nothing on the CP can be refined at all
            }
            let old_sl = best.makespan;

            // Find the trailing run of provably-hopeless entries.
            let cut = match ctx.wb {
                Some(wb) => {
                    let hopeless = |&entry: &Entry| {
                        let mut alloc = best_alloc.clone();
                        Self::apply_entry(&best.schedule_dag, &mut alloc, entry, ctx.p_total);
                        wb.cone_bound_within(ctx.g, &alloc, depth - 1) >= old_sl
                    };
                    let keep = entries
                        .iter()
                        .rposition(|e| !hopeless(e))
                        .map_or(0, |i| i + 1);
                    AtomicCounters::bump(
                        &ctx.counters.branches_pruned,
                        (entries.len() - keep) as u64,
                    );
                    keep
                }
                None => entries.len(),
            };

            let run_branch =
                |&entry: &Entry| self.lookahead_branch(ctx, best_alloc, &best.schedule_dag, entry);
            let branches: Vec<Result<(Allocation, LocbsResult), SchedError>> = if cut > 1 {
                AtomicCounters::bump(&ctx.counters.pool_tasks, cut as u64);
                entries[..cut].par_iter().map(run_branch).collect()
            } else {
                entries[..cut].iter().map(run_branch).collect()
            };

            // The earliest-ranked branch wins ties, keeping the search
            // deterministic regardless of thread scheduling.
            let mut winner: Option<(Allocation, LocbsResult)> = None;
            for b in branches {
                let b = b?;
                let better = match &winner {
                    None => true,
                    Some((_, w)) => b.1.makespan < w.makespan - time_eps(w.makespan),
                };
                if better {
                    winner = Some(b);
                }
            }

            match winner {
                Some((w_alloc, w_res)) if w_res.makespan < old_sl - time_eps(old_sl) => {
                    // Step 39: improvement found; commit and reset the marks.
                    *best_alloc = w_alloc;
                    *best = w_res;
                    marked.clear();
                    AtomicCounters::bump(&ctx.counters.commits, 1);
                }
                // Step 37: failed look-ahead(s) — or a fully-pruned round,
                // which is a failed round the bounds settled without
                // running it. Remember every tried entry either way.
                _ => marked.extend(entries),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_speedup::{ExecutionProfile, ProfiledSpeedup, SpeedupModel};

    fn profiled(times: &[f64]) -> ExecutionProfile {
        ExecutionProfile::new(
            times[0],
            SpeedupModel::Table(ProfiledSpeedup::from_times(times).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn single_task_gets_its_pbest() {
        let mut g = TaskGraph::new();
        g.add_task("t", ExecutionProfile::linear(32.0));
        let cluster = Cluster::new(4, 12.5);
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        assert_eq!(out.allocation.np(TaskId(0)), 4);
        assert!((out.makespan() - 8.0).abs() < 1e-9);
        out.schedule
            .validate(&g, &CommModel::new(&cluster))
            .unwrap();
    }

    #[test]
    fn respects_pbest_bound() {
        // U-shaped execution time: widening past pbest would *hurt*; the
        // candidate filter (np < min(P, Pbest)) must stop there.
        let m = SpeedupModel::Linear.with_overhead(0.05).unwrap();
        let mut g = TaskGraph::new();
        g.add_task("t", ExecutionProfile::new(20.0, m).unwrap());
        let cluster = Cluster::new(16, 12.5);
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        let pbest = g.task(TaskId(0)).profile.pbest(16);
        assert!(out.allocation.np(TaskId(0)) <= pbest);
        assert!((out.makespan() - g.task(TaskId(0)).profile.time(pbest)).abs() < 1e-6);
    }

    /// Figure 2: T1, T3, T4 feed T2; on 3 processors the greedy gain choice
    /// (T1) is inferior to the concurrency-ratio choice (T2 on all 3),
    /// whose schedule reaches the paper's makespan of 15.
    #[test]
    fn fig2_concurrency_ratio_choice() {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", profiled(&[10.0, 7.0, 5.0]));
        let t2 = g.add_task("T2", profiled(&[8.0, 6.0, 5.0]));
        let t3 = g.add_task("T3", profiled(&[9.0, 7.0, 5.0]));
        let t4 = g.add_task("T4", profiled(&[7.0, 5.0, 4.0]));
        g.add_edge(t1, t2, 0.0).unwrap();
        g.add_edge(t3, t2, 0.0).unwrap();
        g.add_edge(t4, t2, 0.0).unwrap();
        let cluster = Cluster::new(3, 12.5);
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        assert!(
            out.makespan() <= 15.0 + 1e-9,
            "paper reaches 15, got {}",
            out.makespan()
        );
        assert_eq!(
            out.allocation.np(t2),
            3,
            "T2 should be widened to all processors"
        );
        out.schedule
            .validate(&g, &CommModel::new(&cluster))
            .unwrap();
    }

    /// Figure 3: two independent tasks with linear speedup on 4 processors.
    /// The greedy (no look-ahead) search is trapped at makespan 40; the
    /// bounded look-ahead escapes to the pure data-parallel optimum of 30.
    #[test]
    fn fig3_lookahead_escapes_local_minimum() {
        let build = || {
            let mut g = TaskGraph::new();
            g.add_task("T1", ExecutionProfile::linear(40.0));
            g.add_task("T2", ExecutionProfile::linear(80.0));
            g
        };
        let cluster = Cluster::new(4, 12.5);
        let greedy = LocMps::new(LocMpsConfig::greedy())
            .schedule(&build(), &cluster)
            .unwrap();
        assert!(
            (greedy.makespan() - 40.0).abs() < 1e-6,
            "greedy should be trapped at 40, got {}",
            greedy.makespan()
        );
        let full = LocMps::default().schedule(&build(), &cluster).unwrap();
        assert!(
            (full.makespan() - 30.0).abs() < 1e-6,
            "look-ahead should reach the data-parallel optimum 30, got {}",
            full.makespan()
        );
        assert_eq!(full.allocation.as_slice(), &[4, 4]);
    }

    #[test]
    fn widens_heavy_edges_when_communication_dominates() {
        // Two tasks with negligible computation but a huge transfer; the
        // only way to shrink the CP is widening the edge endpoints.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(1.0));
        let b = g.add_task("b", ExecutionProfile::linear(1.0));
        g.add_edge(a, b, 1000.0).unwrap();
        let cluster = Cluster::new(4, 12.5);
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        // Widening helps both the aggregate estimate and the placement;
        // the allocation must not stay at the pure task-parallel (1, 1).
        assert!(
            out.allocation.np(a) > 1 || out.allocation.np(b) > 1,
            "edge widening never triggered: {:?}",
            out.allocation.as_slice()
        );
        out.schedule
            .validate(&g, &CommModel::new(&cluster))
            .unwrap();
    }

    #[test]
    fn icaslb_plans_without_communication() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        g.add_edge(a, b, 10_000.0).unwrap();
        let cluster = Cluster::new(2, 12.5);
        let icaslb = LocMps::new(LocMpsConfig::icaslb());
        assert_eq!(icaslb.name(), "iCASLB");
        let out = icaslb.schedule(&g, &cluster).unwrap();
        // Its own (blind) claim ignores the transfer entirely.
        out.schedule
            .validate(&g, &CommModel::blind(&cluster))
            .unwrap();
    }

    #[test]
    fn parallel_lookahead_is_deterministic_and_solves_fig3() {
        let mut g = TaskGraph::new();
        g.add_task("T1", ExecutionProfile::linear(40.0));
        g.add_task("T2", ExecutionProfile::linear(80.0));
        let cluster = Cluster::new(4, 12.5);
        let cfg = LocMpsConfig {
            parallel_entries: 4,
            corner_starts: false,
            ..Default::default()
        };
        let a = LocMps::new(cfg).schedule(&g, &cluster).unwrap();
        let b = LocMps::new(cfg).schedule(&g, &cluster).unwrap();
        assert_eq!(a.schedule, b.schedule, "rayon must not perturb the result");
        assert!((a.makespan() - 30.0).abs() < 1e-6, "got {}", a.makespan());
    }

    #[test]
    fn parallel_lookahead_matches_quality_on_a_mixed_graph() {
        // More entries per round can only help each round's commit; verify
        // the multi-entry variant is valid and no worse on a graph with
        // both heavy computation and heavy communication.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", profiled(&[30.0, 16.0, 9.0, 6.0]));
        let b = g.add_task("b", profiled(&[24.0, 13.0, 8.0, 6.5]));
        let c = g.add_task("c", profiled(&[28.0, 15.0, 9.0, 7.0]));
        let d = g.add_task("d", profiled(&[20.0, 11.0, 7.0, 5.5]));
        g.add_edge(a, b, 300.0).unwrap();
        g.add_edge(a, c, 10.0).unwrap();
        g.add_edge(b, d, 250.0).unwrap();
        g.add_edge(c, d, 10.0).unwrap();
        let cluster = Cluster::new(6, 12.5);
        let seq = LocMps::default().schedule(&g, &cluster).unwrap();
        let par = LocMps::new(LocMpsConfig {
            parallel_entries: 3,
            ..Default::default()
        })
        .schedule(&g, &cluster)
        .unwrap();
        par.schedule
            .validate(&g, &CommModel::new(&cluster))
            .unwrap();
        assert!(
            par.makespan() <= seq.makespan() * 1.10 + 1e-9,
            "parallel {} vs sequential {}",
            par.makespan(),
            seq.makespan()
        );
    }

    #[test]
    fn never_worse_than_pure_task_parallel_start() {
        // LoC-MPS starts at TASK and only commits improvements.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", profiled(&[30.0, 16.0, 11.0]));
        let b = g.add_task("b", profiled(&[20.0, 12.0, 9.0]));
        let c = g.add_task("c", profiled(&[25.0, 14.0, 10.0]));
        g.add_edge(a, b, 5.0).unwrap();
        g.add_edge(a, c, 5.0).unwrap();
        let cluster = Cluster::new(4, 12.5);
        let model = CommModel::new(&cluster);
        let task_parallel = Locbs::new(model, LocbsOptions::default())
            .run(&g, &Allocation::ones(3))
            .unwrap();
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        assert!(out.makespan() <= task_parallel.makespan + 1e-9);
        out.schedule.validate(&g, &model).unwrap();
    }
}
