//! Schedules: the common output type of every scheduler in this workspace,
//! with an independent validity checker and a text Gantt renderer.

use locmps_platform::{CommOverlap, ProcSet};
use locmps_taskgraph::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

use crate::commcost::CommModel;

/// Relative tolerance for floating-point time comparisons.
pub const TIME_EPS: f64 = 1e-6;

/// Scale-aware closeness test for schedule times: `TIME_EPS` relative to
/// the magnitude of `scale` (absolute below 1). Exposed so external tests
/// can mirror the scheduler's comparison semantics exactly.
#[inline]
pub fn time_eps(scale: f64) -> f64 {
    TIME_EPS * scale.abs().max(1.0)
}

/// Placement and timing of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledTask {
    /// The task.
    pub task: TaskId,
    /// The processors it occupies.
    pub procs: ProcSet,
    /// When the task begins occupying its processors. Under the no-overlap
    /// communication regime this is when inbound redistribution starts.
    pub start: f64,
    /// When computation proper begins (`start` plus inbound redistribution
    /// under no-overlap; equal to `start` under full overlap).
    pub compute_start: f64,
    /// When the task completes and releases its processors.
    pub finish: f64,
}

impl ScheduledTask {
    /// Number of processors allocated, `np(t)`.
    pub fn np(&self) -> usize {
        self.procs.len()
    }
}

/// Why a schedule failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A task was never placed.
    Unscheduled(TaskId),
    /// A task uses a processor id outside the cluster.
    ProcOutOfRange(TaskId),
    /// A task has an empty processor set.
    EmptyProcSet(TaskId),
    /// Timing fields are inconsistent (`start ≤ compute_start ≤ finish`
    /// violated, or `finish ≠ compute_start + et`).
    BadTiming(TaskId),
    /// A precedence or redistribution constraint is violated on an edge.
    PrecedenceViolated {
        /// Producer task.
        src: TaskId,
        /// Consumer task.
        dst: TaskId,
        /// Earliest legal value for the violated field.
        required: f64,
        /// The actual value found in the schedule.
        actual: f64,
    },
    /// Two tasks occupy the same processor at the same time.
    Overlap(TaskId, TaskId),
    /// The consumer's communication window is too short for its inbound
    /// redistribution under the no-overlap regime.
    CommWindowTooShort(TaskId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Unscheduled(t) => write!(f, "task {t} was never scheduled"),
            ScheduleError::ProcOutOfRange(t) => {
                write!(f, "task {t} uses an out-of-range processor")
            }
            ScheduleError::EmptyProcSet(t) => write!(f, "task {t} has an empty processor set"),
            ScheduleError::BadTiming(t) => write!(f, "task {t} has inconsistent timing"),
            ScheduleError::PrecedenceViolated {
                src,
                dst,
                required,
                actual,
            } => write!(
                f,
                "edge {src} -> {dst} violated: needs {required:.6}, got {actual:.6}"
            ),
            ScheduleError::Overlap(a, b) => write!(f, "tasks {a} and {b} overlap on a processor"),
            ScheduleError::CommWindowTooShort(t) => {
                write!(f, "task {t}'s communication window is too short")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Options for the text Gantt chart.
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Character columns used for the time axis.
    pub width: usize,
}

impl Default for GanttOptions {
    fn default() -> Self {
        Self { width: 72 }
    }
}

/// A complete schedule: one [`ScheduledTask`] per task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    entries: Vec<ScheduledTask>,
}

impl Schedule {
    /// Builds a schedule from per-task entries (any order; re-sorted by
    /// task id).
    ///
    /// # Panics
    /// Panics if two entries describe the same task.
    pub fn from_entries(mut entries: Vec<ScheduledTask>) -> Self {
        entries.sort_by_key(|e| e.task);
        for w in entries.windows(2) {
            assert!(w[0].task != w[1].task, "duplicate entry for {}", w[0].task);
        }
        Self { entries }
    }

    /// The entry for task `t`, if present.
    pub fn get(&self, t: TaskId) -> Option<&ScheduledTask> {
        self.entries
            .binary_search_by_key(&t, |e| e.task)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// All entries in task-id order.
    pub fn entries(&self) -> &[ScheduledTask] {
        &self.entries
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no task is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The makespan: latest finish time (0 for an empty schedule).
    pub fn makespan(&self) -> f64 {
        self.entries.iter().map(|e| e.finish).fold(0.0, f64::max)
    }

    /// Fraction of the processors × makespan rectangle filled with task
    /// occupancy.
    pub fn utilization(&self, n_procs: usize) -> f64 {
        let ms = self.makespan();
        if ms <= 0.0 || n_procs == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .entries
            .iter()
            .map(|e| (e.finish - e.start) * e.np() as f64)
            .sum();
        busy / (ms * n_procs as f64)
    }

    /// Checks that this schedule is *valid* for `g` on `cluster` under
    /// `model`'s communication semantics:
    ///
    /// 1. every task placed once, on in-range, non-empty processor sets;
    /// 2. `finish = compute_start + et(t, np(t))` and
    ///    `start ≤ compute_start`;
    /// 3. every edge respected: under full overlap the consumer's
    ///    computation starts no earlier than producer finish plus the exact
    ///    transfer time; under no-overlap the consumer's occupancy starts
    ///    no earlier than producer finish and its communication window
    ///    covers the sum of its inbound transfers;
    /// 4. no processor is double-booked.
    pub fn validate(&self, g: &TaskGraph, model: &CommModel<'_>) -> Result<(), ScheduleError> {
        let cluster = model.cluster();
        // 1 & 2: per-task checks.
        for t in g.task_ids() {
            let e = self.get(t).ok_or(ScheduleError::Unscheduled(t))?;
            if e.procs.is_empty() {
                return Err(ScheduleError::EmptyProcSet(t));
            }
            if e.procs.iter().any(|p| p as usize >= cluster.n_procs) {
                return Err(ScheduleError::ProcOutOfRange(t));
            }
            let et = g.task(t).profile.time(e.np());
            let eps = time_eps(e.finish);
            if e.start > e.compute_start + eps
                || e.compute_start > e.finish + eps
                || (e.finish - (e.compute_start + et)).abs() > eps
            {
                return Err(ScheduleError::BadTiming(t));
            }
        }
        // 3: edges.
        for t in g.task_ids() {
            let dst = self.get(t).expect("checked above");
            let mut inbound = 0.0;
            for eid in g.in_edges(t) {
                let edge = g.edge(eid);
                let src = self.get(edge.src).expect("checked above");
                let eps = time_eps(src.finish.max(dst.finish));
                match cluster.overlap {
                    CommOverlap::Full => {
                        let ct = model.transfer_time(&src.procs, &dst.procs, edge.volume);
                        let required = src.finish + ct;
                        if dst.compute_start + eps < required {
                            return Err(ScheduleError::PrecedenceViolated {
                                src: edge.src,
                                dst: t,
                                required,
                                actual: dst.compute_start,
                            });
                        }
                    }
                    CommOverlap::None => {
                        if dst.start + eps < src.finish {
                            return Err(ScheduleError::PrecedenceViolated {
                                src: edge.src,
                                dst: t,
                                required: src.finish,
                                actual: dst.start,
                            });
                        }
                        inbound += model.transfer_time(&src.procs, &dst.procs, edge.volume);
                    }
                }
            }
            if cluster.overlap == CommOverlap::None {
                let window = dst.compute_start - dst.start;
                if window + time_eps(dst.finish) < inbound {
                    return Err(ScheduleError::CommWindowTooShort(t));
                }
            }
        }
        // 4: double-booking, per processor sweep.
        let mut by_proc: Vec<Vec<(f64, f64, TaskId)>> = vec![Vec::new(); cluster.n_procs];
        for e in &self.entries {
            for p in e.procs.iter() {
                by_proc[p as usize].push((e.start, e.finish, e.task));
            }
        }
        for intervals in &mut by_proc {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                let eps = time_eps(w[1].1);
                if w[1].0 + eps < w[0].1 {
                    return Err(ScheduleError::Overlap(w[0].2, w[1].2));
                }
            }
        }
        Ok(())
    }

    /// Renders an ASCII Gantt chart: one row per processor, `#`-shaded task
    /// boxes labelled by task index, `.` for idle and `~` for a task's
    /// inbound-communication window.
    pub fn gantt(&self, g: &TaskGraph, n_procs: usize, opts: GanttOptions) -> String {
        use std::fmt::Write as _;
        let ms = self.makespan();
        let width = opts.width.max(8);
        let scale = if ms > 0.0 { width as f64 / ms } else { 0.0 };
        let mut rows = vec![vec!['.'; width]; n_procs];
        for e in &self.entries {
            let label = label_char(e.task.index());
            let c0 = ((e.start * scale) as usize).min(width - 1);
            let cc = ((e.compute_start * scale) as usize).min(width);
            let c1 = (((e.finish * scale).ceil()) as usize).clamp(c0 + 1, width);
            for p in e.procs.iter() {
                let row = &mut rows[p as usize];
                for (i, cell) in row.iter_mut().enumerate().take(c1).skip(c0) {
                    *cell = if i < cc { '~' } else { label };
                }
            }
        }
        let mut out = String::new();
        writeln!(
            out,
            "makespan = {ms:.2}  (one column ≈ {:.2})",
            if scale > 0.0 { 1.0 / scale } else { 0.0 }
        )
        .unwrap();
        for (p, row) in rows.iter().enumerate() {
            writeln!(out, "p{p:>3} |{}|", row.iter().collect::<String>()).unwrap();
        }
        let mut legend: Vec<(TaskId, char)> = self
            .entries
            .iter()
            .map(|e| (e.task, label_char(e.task.index())))
            .collect();
        legend.truncate(26);
        write!(out, "tasks:").unwrap();
        for (t, c) in legend {
            write!(out, " {c}={}", g.task(t).name).unwrap();
        }
        out.push('\n');
        out
    }
}

fn label_char(i: usize) -> char {
    const LABELS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    LABELS[i % LABELS.len()] as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_platform::Cluster;
    use locmps_speedup::ExecutionProfile;

    fn set(ids: &[u32]) -> ProcSet {
        ids.iter().copied().collect()
    }

    fn chain_graph(volume: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(10.0));
        g.add_edge(a, b, volume).unwrap();
        g
    }

    fn entry(t: u32, procs: &[u32], start: f64, cstart: f64, finish: f64) -> ScheduledTask {
        ScheduledTask {
            task: TaskId(t),
            procs: set(procs),
            start,
            compute_start: cstart,
            finish,
        }
    }

    #[test]
    fn valid_chain_schedule_passes() {
        let g = chain_graph(0.0);
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let s = Schedule::from_entries(vec![
            entry(0, &[0], 0.0, 0.0, 10.0),
            entry(1, &[0], 10.0, 10.0, 20.0),
        ]);
        s.validate(&g, &model).unwrap();
        assert_eq!(s.makespan(), 20.0);
        assert!((s.utilization(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn detects_precedence_violation_with_transfer() {
        let g = chain_graph(125.0); // 10 s at 12.5 MB/s between disjoint procs
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let s = Schedule::from_entries(vec![
            entry(0, &[0], 0.0, 0.0, 10.0),
            entry(1, &[1], 10.0, 10.0, 20.0), // starts before transfer done
        ]);
        match s.validate(&g, &model).unwrap_err() {
            ScheduleError::PrecedenceViolated { required, .. } => {
                assert!((required - 20.0).abs() < 1e-9);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Blind model accepts the same schedule (iCASLB's own view).
        let blind = CommModel::blind(&cluster);
        s.validate(&g, &blind).unwrap();
    }

    #[test]
    fn detects_double_booking() {
        let g = {
            let mut g = TaskGraph::new();
            g.add_task("a", ExecutionProfile::linear(10.0));
            g.add_task("b", ExecutionProfile::linear(10.0));
            g
        };
        let cluster = Cluster::new(1, 12.5);
        let model = CommModel::new(&cluster);
        let s = Schedule::from_entries(vec![
            entry(0, &[0], 0.0, 0.0, 10.0),
            entry(1, &[0], 5.0, 5.0, 15.0),
        ]);
        assert!(matches!(
            s.validate(&g, &model),
            Err(ScheduleError::Overlap(_, _))
        ));
    }

    #[test]
    fn detects_missing_and_malformed_tasks() {
        let g = chain_graph(0.0);
        let cluster = Cluster::new(2, 12.5);
        let model = CommModel::new(&cluster);
        let missing = Schedule::from_entries(vec![entry(0, &[0], 0.0, 0.0, 10.0)]);
        assert!(matches!(
            missing.validate(&g, &model),
            Err(ScheduleError::Unscheduled(_))
        ));
        let out_of_range = Schedule::from_entries(vec![
            entry(0, &[5], 0.0, 0.0, 10.0),
            entry(1, &[0], 10.0, 10.0, 20.0),
        ]);
        assert!(matches!(
            out_of_range.validate(&g, &model),
            Err(ScheduleError::ProcOutOfRange(_))
        ));
        let bad_timing = Schedule::from_entries(vec![
            entry(0, &[0], 0.0, 0.0, 99.0), // finish != start + et
            entry(1, &[0], 99.0, 99.0, 109.0),
        ]);
        assert!(matches!(
            bad_timing.validate(&g, &model),
            Err(ScheduleError::BadTiming(_))
        ));
    }

    #[test]
    fn no_overlap_requires_comm_window() {
        let g = chain_graph(125.0);
        let cluster = Cluster::new(2, 12.5).without_overlap();
        let model = CommModel::new(&cluster);
        // Transfer takes 10 s; window of zero is rejected.
        let bad = Schedule::from_entries(vec![
            entry(0, &[0], 0.0, 0.0, 10.0),
            entry(1, &[1], 10.0, 10.0, 20.0),
        ]);
        assert!(matches!(
            bad.validate(&g, &model),
            Err(ScheduleError::CommWindowTooShort(_))
        ));
        // With the window, it passes.
        let good = Schedule::from_entries(vec![
            entry(0, &[0], 0.0, 0.0, 10.0),
            entry(1, &[1], 10.0, 20.0, 30.0),
        ]);
        good.validate(&g, &model).unwrap();
    }

    #[test]
    fn gantt_renders_all_processors() {
        let g = chain_graph(0.0);
        let s = Schedule::from_entries(vec![
            entry(0, &[0], 0.0, 0.0, 10.0),
            entry(1, &[1], 10.0, 10.0, 20.0),
        ]);
        let txt = s.gantt(&g, 2, GanttOptions::default());
        assert!(txt.contains("p  0"));
        assert!(txt.contains("p  1"));
        assert!(txt.contains("makespan = 20.00"));
        assert!(txt.contains("A=a"));
    }
}
