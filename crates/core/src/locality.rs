//! Locality scoring: which processors already hold a task's input data?
//!
//! Algorithm 2, step 9 chooses "the subset of processors in `p` that have
//! maximum locality for `tp`". A task's input data lives block-cyclically
//! spread over each parent's processor group, so the value of placing the
//! task on processor `x` is the input volume resident on `x`:
//! `score(x) = Σ_{e=(s,t)} volume(e) · share_s(x)` where `share_s(x)` is
//! `1/np(s)` if `x` is in `s`'s group and 0 otherwise.

use locmps_platform::{ProcId, ProcSet};
use locmps_taskgraph::{TaskGraph, TaskId};

/// Per-processor resident input volume for task `t`, given each parent's
/// placement (`parent_procs` returns the processor set a scheduled parent
/// runs on).
pub fn input_locality_scores(
    g: &TaskGraph,
    t: TaskId,
    n_procs: usize,
    parent_procs: impl Fn(TaskId) -> ProcSet,
) -> Vec<f64> {
    let mut scores = vec![0.0; n_procs];
    for e in g.in_edges(t) {
        let edge = g.edge(e);
        if edge.volume <= 0.0 {
            continue;
        }
        let procs = parent_procs(edge.src);
        let np = procs.len();
        if np == 0 {
            continue;
        }
        let share = edge.volume / np as f64;
        for p in procs.iter() {
            if (p as usize) < n_procs {
                scores[p as usize] += share;
            }
        }
    }
    scores
}

/// Buffer-reusing, clone-free form of [`input_locality_scores`]: the
/// parent lookup returns a *borrowed* processor set and the score vector
/// is written into `out` (resized to `n_procs`).
pub fn input_locality_scores_into<'p>(
    g: &TaskGraph,
    t: TaskId,
    n_procs: usize,
    parent_procs: impl Fn(TaskId) -> &'p ProcSet,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.resize(n_procs, 0.0);
    for e in g.in_edges(t) {
        let edge = g.edge(e);
        if edge.volume <= 0.0 {
            continue;
        }
        let procs = parent_procs(edge.src);
        let np = procs.len();
        if np == 0 {
            continue;
        }
        let share = edge.volume / np as f64;
        for p in procs.iter() {
            if (p as usize) < n_procs {
                out[p as usize] += share;
            }
        }
    }
}

/// Picks the `np` highest-scoring processors out of `free` (ties broken
/// toward lower ids for determinism). Returns `None` when `free` has fewer
/// than `np` members.
pub fn select_max_locality(free: &ProcSet, np: usize, scores: &[f64]) -> Option<ProcSet> {
    let mut scratch = Vec::new();
    let mut out = ProcSet::new();
    select_max_locality_into(free, np, scores, &mut scratch, &mut out).then_some(out)
}

/// Buffer-reusing form of [`select_max_locality`]: fills `out` with the
/// selected set and returns whether selection succeeded (`free` had at
/// least `np` members). `scratch` holds the candidate ids between calls.
///
/// Selection uses `select_nth_unstable_by` — `O(F)` instead of the full
/// `O(F log F)` sort — under a *total* order (score descending via
/// `total_cmp`, then id ascending), so the top-`np` set it partitions out
/// is exactly the one the sorting implementation took.
pub fn select_max_locality_into(
    free: &ProcSet,
    np: usize,
    scores: &[f64],
    scratch: &mut Vec<ProcId>,
    out: &mut ProcSet,
) -> bool {
    scratch.clear();
    scratch.extend(free.iter());
    if scratch.len() < np {
        return false;
    }
    let cmp = |&a: &ProcId, &b: &ProcId| {
        let sa = scores.get(a as usize).copied().unwrap_or(0.0);
        let sb = scores.get(b as usize).copied().unwrap_or(0.0);
        sb.total_cmp(&sa).then(a.cmp(&b))
    };
    if np > 0 && np < scratch.len() {
        scratch.select_nth_unstable_by(np - 1, cmp);
    }
    out.clear();
    for &p in &scratch[..np] {
        out.insert(p);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_speedup::ExecutionProfile;

    fn set(ids: &[u32]) -> ProcSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn scores_follow_parent_shares() {
        // Two parents: a on {0,1} sending 40 MB, b on {1,2} sending 20 MB.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(1.0));
        let b = g.add_task("b", ExecutionProfile::linear(1.0));
        let t = g.add_task("t", ExecutionProfile::linear(1.0));
        g.add_edge(a, t, 40.0).unwrap();
        g.add_edge(b, t, 20.0).unwrap();
        let placement = |p: TaskId| if p == a { set(&[0, 1]) } else { set(&[1, 2]) };
        let scores = input_locality_scores(&g, t, 4, placement);
        assert_eq!(scores, vec![20.0, 30.0, 10.0, 0.0]);
        // The borrow-based form fills a reused buffer with the same scores.
        let (pa, pb) = (set(&[0, 1]), set(&[1, 2]));
        let mut out = vec![99.0; 2];
        input_locality_scores_into(&g, t, 4, |p| if p == a { &pa } else { &pb }, &mut out);
        assert_eq!(out, scores);
    }

    #[test]
    fn zero_volume_edges_do_not_score() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(1.0));
        let t = g.add_task("t", ExecutionProfile::linear(1.0));
        g.add_edge(a, t, 0.0).unwrap();
        let scores = input_locality_scores(&g, t, 2, |_| set(&[0]));
        assert_eq!(scores, vec![0.0, 0.0]);
    }

    #[test]
    fn selection_prefers_high_scores_then_low_ids() {
        let free = set(&[0, 1, 2, 3]);
        let scores = vec![5.0, 9.0, 5.0, 0.0];
        let picked = select_max_locality(&free, 2, &scores).unwrap();
        assert_eq!(
            picked.to_vec(),
            vec![0, 1],
            "9.0 first, then tie 5.0 -> lower id"
        );
        let picked3 = select_max_locality(&free, 3, &scores).unwrap();
        assert_eq!(picked3.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn selection_requires_enough_free_procs() {
        let free = set(&[4]);
        assert!(select_max_locality(&free, 2, &[]).is_none());
        assert_eq!(
            select_max_locality(&free, 1, &[]).unwrap().to_vec(),
            vec![4]
        );
    }

    #[test]
    fn reused_buffers_match_the_allocating_form() {
        let free = set(&[0, 1, 2, 3, 5, 8]);
        let scores = vec![1.0, 4.0, 4.0, 0.5, 0.0, 2.0, 0.0, 0.0, 7.0];
        let mut scratch = Vec::new();
        let mut out = ProcSet::new();
        for np in 0..=6 {
            let fresh = select_max_locality(&free, np, &scores);
            let ok = select_max_locality_into(&free, np, &scores, &mut scratch, &mut out);
            assert_eq!(ok, fresh.is_some());
            if let Some(fresh) = fresh {
                assert_eq!(out, fresh, "np={np}");
            }
        }
        assert!(!select_max_locality_into(
            &free,
            7,
            &scores,
            &mut scratch,
            &mut out
        ));
    }
}
