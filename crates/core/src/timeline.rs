//! The 2-D (processors × time) resource chart behind backfill scheduling
//! (§III.F).
//!
//! Parallel job scheduling "can be viewed as a 2D chart with time along one
//! axis and the processors along the other"; backfilling finds *holes* in
//! that chart. [`Timeline`] tracks the busy intervals of every processor and
//! enumerates the candidate start times at which the set of free processors
//! changes — every minimal-finish-time placement starts either at the task's
//! ready time or at some interval end, so scanning those candidates finds
//! the optimal hole.
//!
//! # Incremental event list
//!
//! Candidate starts are booking *ends*. Instead of re-gathering and sorting
//! every processor's interval ends per query (`O(B log B)` per task, `B` =
//! total bookings), [`Timeline::occupy`] maintains one globally sorted end
//! list — a single ordered insert per booking — and queries walk a slice of
//! it: [`Timeline::candidate_times`] is an `O(log B + k)` scan, and the
//! streaming [`CandidateTimes`] cursor lets the placement loop stop at its
//! current best finish time without materializing anything.
//!
//! # Tolerance
//!
//! Touching interval endpoints must not conflict even after float rounding,
//! so comparisons use the relative `time_eps`. A *purely* relative
//! tolerance, however, grows past entire task durations at large makespans
//! (at `t ≈ 1e9`, `time_eps` is ~1e3 — longer than a 10-second task), which
//! once allowed genuine overlaps to book silently. Every tolerance here is
//! therefore additionally bounded by half the shortest interval involved:
//! rounding error is many orders of magnitude below either bound, and an
//! overlap that exceeds half a task is never forgiven.

use locmps_platform::{ProcId, ProcSet};

use crate::schedule::time_eps;

/// The comparison slack for intervals `a` and `b` meeting near time
/// `scale`: relative to the time scale but never more than half the
/// shorter interval.
#[inline]
fn bounded_eps(scale: f64, a_len: f64, b_len: f64) -> f64 {
    time_eps(scale).min(0.5 * a_len.min(b_len))
}

/// Per-processor busy intervals with hole queries.
#[derive(Debug, Clone)]
pub struct Timeline {
    busy: Vec<Vec<(f64, f64)>>,
    /// Every booking's end time, kept sorted across all processors — the
    /// shared candidate-start event list.
    ends: Vec<f64>,
}

impl Timeline {
    /// An all-idle chart for `n_procs` processors.
    pub fn new(n_procs: usize) -> Self {
        Self {
            busy: vec![Vec::new(); n_procs],
            ends: Vec::new(),
        }
    }

    /// Number of processors tracked.
    pub fn n_procs(&self) -> usize {
        self.busy.len()
    }

    /// Marks `[start, finish)` busy on every processor in `procs`.
    ///
    /// # Panics
    /// Panics if the interval is inverted or overlaps an existing booking
    /// (double-booking is a scheduler bug and must never be silent).
    pub fn occupy(&mut self, procs: &ProcSet, start: f64, finish: f64) {
        assert!(finish >= start, "inverted interval");
        if finish <= start {
            return; // zero-length bookings occupy nothing
        }
        let len = finish - start;
        for p in procs.iter() {
            let intervals = &mut self.busy[p as usize];
            let idx = intervals.partition_point(|iv| iv.0 < start);
            if idx > 0 {
                let (ps, pf) = intervals[idx - 1];
                let eps = bounded_eps(finish, len, pf - ps);
                assert!(pf <= start + eps, "double booking on p{p}");
            }
            if idx < intervals.len() {
                let (ns, nf) = intervals[idx];
                let eps = bounded_eps(finish, len, nf - ns);
                assert!(ns + eps >= finish, "double booking on p{p}");
            }
            intervals.insert(idx, (start, finish));
        }
        let at = self.ends.partition_point(|&e| e < finish);
        self.ends.insert(at, finish);
        crate::invariant!(
            self.ends.windows(2).all(|w| w[0] <= w[1]),
            "candidate-end event list must stay sorted after every insert"
        );
    }

    /// Whether processor `p` is idle throughout `[start, finish)`.
    /// Touching interval endpoints do not conflict.
    pub fn is_free(&self, p: ProcId, start: f64, finish: f64) -> bool {
        let eps = time_eps(finish).min(0.5 * (finish - start));
        let intervals = &self.busy[p as usize];
        // First interval that could intersect: the one before the partition
        // point and the one at it.
        let idx = intervals.partition_point(|iv| iv.1 <= start + eps);
        match intervals.get(idx) {
            Some(&(s, _)) => s + eps >= finish,
            None => true,
        }
    }

    /// The set of processors idle throughout `[start, finish)`.
    pub fn free_set(&self, start: f64, finish: f64) -> ProcSet {
        let mut out = ProcSet::new();
        self.free_set_into(start, finish, &mut out);
        out
    }

    /// Fills `out` with the processors idle throughout `[start, finish)`,
    /// reusing its allocation.
    pub fn free_set_into(&self, start: f64, finish: f64, out: &mut ProcSet) {
        out.clear();
        for p in 0..self.busy.len() as ProcId {
            if self.is_free(p, start, finish) {
                out.insert(p);
            }
        }
    }

    /// The time at which processor `p` becomes permanently idle (its last
    /// booking's end; 0 when never booked). This is the only availability
    /// information the *no-backfill* scheduler variant keeps (Fig. 6).
    pub fn last_free_time(&self, p: ProcId) -> f64 {
        self.busy[p as usize].last().map_or(0.0, |iv| iv.1)
    }

    /// Candidate start times for a placement not before `after`: `after`
    /// itself plus every booking end strictly later than `after`, sorted
    /// and deduplicated.
    pub fn candidate_times(&self, after: f64) -> Vec<f64> {
        self.candidate_times_below(after, f64::INFINITY)
    }

    /// [`Timeline::candidate_times`] cut off at `horizon`: only candidates
    /// strictly below it are returned. Callers that track a best finish
    /// time pass it here so candidates that cannot improve are never even
    /// collected.
    pub fn candidate_times_below(&self, after: f64, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut cursor = self.candidates_after(after);
        while let Some(t) = cursor.next_below(horizon) {
            out.push(t);
        }
        out
    }

    /// A streaming cursor over the candidate start times not before
    /// `after` — the zero-allocation form of
    /// [`Timeline::candidate_times_below`] used by the placement loop.
    pub fn candidates_after(&self, after: f64) -> CandidateTimes<'_> {
        let from = self.ends.partition_point(|&e| e <= after);
        CandidateTimes {
            ends: &self.ends,
            i: from,
            after,
            last: None,
        }
    }

    /// All bookings on processor `p`, in time order (test/debug aid).
    pub fn bookings(&self, p: ProcId) -> &[(f64, f64)] {
        &self.busy[p as usize]
    }
}

/// Streaming candidate-start iterator: yields `after`, then each booking
/// end above it, skipping ends within `time_eps` of the previously yielded
/// candidate. Created by [`Timeline::candidates_after`].
#[derive(Debug)]
pub struct CandidateTimes<'a> {
    ends: &'a [f64],
    i: usize,
    after: f64,
    last: Option<f64>,
}

impl CandidateTimes<'_> {
    /// The next candidate strictly below `horizon`, or `None` when the
    /// remaining candidates are all at/past it. Candidates ascend, so with
    /// a non-increasing `horizon` (a best finish time that only improves)
    /// `None` is final.
    pub fn next_below(&mut self, horizon: f64) -> Option<f64> {
        let Some(last) = self.last else {
            // First call: the ready time itself is always the first candidate.
            if self.after >= horizon {
                return None;
            }
            self.last = Some(self.after);
            return Some(self.after);
        };
        while let Some(&e) = self.ends.get(self.i) {
            if (e - last).abs() <= time_eps(e) {
                self.i += 1; // within tolerance of the previous candidate
                continue;
            }
            if e >= horizon {
                return None;
            }
            self.i += 1;
            self.last = Some(e);
            return Some(e);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ProcSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn occupy_and_query() {
        let mut tl = Timeline::new(3);
        tl.occupy(&set(&[0, 1]), 0.0, 10.0);
        assert!(!tl.is_free(0, 5.0, 6.0));
        assert!(tl.is_free(2, 0.0, 100.0));
        assert!(tl.is_free(0, 10.0, 20.0), "touching endpoints are free");
        assert_eq!(tl.free_set(0.0, 10.0).to_vec(), vec![2]);
        assert_eq!(tl.free_set(10.0, 20.0).to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn holes_between_bookings_are_found() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 0.0, 5.0);
        tl.occupy(&set(&[0]), 20.0, 30.0);
        assert!(tl.is_free(0, 5.0, 20.0));
        assert!(tl.is_free(0, 6.0, 19.0));
        assert!(!tl.is_free(0, 4.0, 6.0));
        assert!(!tl.is_free(0, 19.0, 21.0));
        assert_eq!(tl.last_free_time(0), 30.0);
    }

    #[test]
    fn out_of_order_occupation_stays_sorted() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 20.0, 30.0);
        tl.occupy(&set(&[0]), 0.0, 5.0); // backfill into the earlier hole
        tl.occupy(&set(&[0]), 5.0, 20.0);
        assert_eq!(tl.bookings(0), &[(0.0, 5.0), (5.0, 20.0), (20.0, 30.0)]);
        assert!(!tl.is_free(0, 0.0, 30.0));
    }

    #[test]
    #[should_panic(expected = "double booking")]
    fn double_booking_panics() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 0.0, 10.0);
        tl.occupy(&set(&[0]), 5.0, 15.0);
    }

    /// Regression: at makespans near 1e9 the old purely relative tolerance
    /// (`1e-6 · finish` ≈ 1e3) forgave overlaps far longer than the tasks
    /// themselves, silently double-booking. The length-bounded tolerance
    /// must reject them loudly.
    #[test]
    #[should_panic(expected = "double booking")]
    fn long_makespan_overlap_is_not_forgiven() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 1.0e9, 1.0e9 + 10.0);
        // Overlaps the previous booking by 7 time units — far below the
        // 1e-6-relative slack (~1e3) but most of the task's duration.
        tl.occupy(&set(&[0]), 1.0e9 + 3.0, 1.0e9 + 13.0);
    }

    #[test]
    fn long_makespan_freeness_is_length_aware() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 1.0e9, 1.0e9 + 10.0);
        // Under the old relative-only eps this interval looked free.
        assert!(!tl.is_free(0, 1.0e9 + 3.0, 1.0e9 + 13.0));
        // Touching placement stays free, as at small scales.
        assert!(tl.is_free(0, 1.0e9 + 10.0, 1.0e9 + 20.0));
        tl.occupy(&set(&[0]), 1.0e9 + 10.0, 1.0e9 + 20.0);
        assert_eq!(
            tl.bookings(0),
            &[(1.0e9, 1.0e9 + 10.0), (1.0e9 + 10.0, 1.0e9 + 20.0)]
        );
    }

    #[test]
    fn candidate_times_are_ready_time_plus_ends() {
        let mut tl = Timeline::new(2);
        tl.occupy(&set(&[0]), 0.0, 5.0);
        tl.occupy(&set(&[1]), 0.0, 8.0);
        tl.occupy(&set(&[0]), 5.0, 12.0);
        assert_eq!(tl.candidate_times(2.0), vec![2.0, 5.0, 8.0, 12.0]);
        assert_eq!(tl.candidate_times(8.0), vec![8.0, 12.0]);
        assert_eq!(tl.candidate_times(50.0), vec![50.0]);
    }

    #[test]
    fn candidate_horizon_cuts_off_the_tail() {
        let mut tl = Timeline::new(2);
        tl.occupy(&set(&[0]), 0.0, 5.0);
        tl.occupy(&set(&[1]), 0.0, 8.0);
        tl.occupy(&set(&[0]), 5.0, 12.0);
        assert_eq!(tl.candidate_times_below(2.0, 8.0), vec![2.0, 5.0]);
        assert_eq!(tl.candidate_times_below(2.0, 8.5), vec![2.0, 5.0, 8.0]);
        assert_eq!(tl.candidate_times_below(9.0, 9.0), Vec::<f64>::new());
        // The cursor honors a horizon that tightens mid-scan.
        let mut c = tl.candidates_after(0.0);
        assert_eq!(c.next_below(f64::INFINITY), Some(0.0));
        assert_eq!(c.next_below(f64::INFINITY), Some(5.0));
        assert_eq!(c.next_below(9.0), Some(8.0));
        assert_eq!(c.next_below(9.0), None, "12.0 is past the horizon");
    }

    #[test]
    fn event_list_matches_bookings_under_interleaved_inserts() {
        let mut tl = Timeline::new(3);
        tl.occupy(&set(&[2]), 6.0, 9.0);
        tl.occupy(&set(&[0, 1]), 0.0, 4.0);
        tl.occupy(&set(&[0]), 4.0, 6.0);
        tl.occupy(&set(&[1]), 30.0, 31.0);
        assert_eq!(tl.candidate_times(0.0), vec![0.0, 4.0, 6.0, 9.0, 31.0]);
        assert_eq!(tl.candidate_times(5.0), vec![5.0, 6.0, 9.0, 31.0]);
    }

    #[test]
    fn zero_length_interval_is_fine() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 3.0, 3.0);
        assert!(tl.is_free(0, 0.0, 10.0));
    }
}
