//! The 2-D (processors × time) resource chart behind backfill scheduling
//! (§III.F).
//!
//! Parallel job scheduling "can be viewed as a 2D chart with time along one
//! axis and the processors along the other"; backfilling finds *holes* in
//! that chart. [`Timeline`] tracks the busy intervals of every processor and
//! enumerates the candidate start times at which the set of free processors
//! changes — every minimal-finish-time placement starts either at the task's
//! ready time or at some interval end, so scanning those candidates finds
//! the optimal hole.

use locmps_platform::{ProcId, ProcSet};

use crate::schedule::time_eps;

/// Per-processor busy intervals with hole queries.
#[derive(Debug, Clone)]
pub struct Timeline {
    busy: Vec<Vec<(f64, f64)>>,
}

impl Timeline {
    /// An all-idle chart for `n_procs` processors.
    pub fn new(n_procs: usize) -> Self {
        Self { busy: vec![Vec::new(); n_procs] }
    }

    /// Number of processors tracked.
    pub fn n_procs(&self) -> usize {
        self.busy.len()
    }

    /// Marks `[start, finish)` busy on every processor in `procs`.
    ///
    /// # Panics
    /// Panics if the interval is inverted or overlaps an existing booking
    /// (double-booking is a scheduler bug and must never be silent).
    pub fn occupy(&mut self, procs: &ProcSet, start: f64, finish: f64) {
        assert!(finish >= start, "inverted interval");
        if finish <= start {
            return; // zero-length bookings occupy nothing
        }
        for p in procs.iter() {
            let intervals = &mut self.busy[p as usize];
            let idx = intervals.partition_point(|iv| iv.0 < start);
            let eps = time_eps(finish);
            if idx > 0 {
                assert!(intervals[idx - 1].1 <= start + eps, "double booking on p{p}");
            }
            if idx < intervals.len() {
                assert!(intervals[idx].0 + eps >= finish, "double booking on p{p}");
            }
            intervals.insert(idx, (start, finish));
        }
    }

    /// Whether processor `p` is idle throughout `[start, finish)`.
    /// Touching interval endpoints do not conflict.
    pub fn is_free(&self, p: ProcId, start: f64, finish: f64) -> bool {
        let eps = time_eps(finish);
        let intervals = &self.busy[p as usize];
        // First interval that could intersect: the one before the partition
        // point and the one at it.
        let idx = intervals.partition_point(|iv| iv.1 <= start + eps);
        match intervals.get(idx) {
            Some(&(s, _)) => s + eps >= finish,
            None => true,
        }
    }

    /// The set of processors idle throughout `[start, finish)`.
    pub fn free_set(&self, start: f64, finish: f64) -> ProcSet {
        (0..self.busy.len() as ProcId).filter(|&p| self.is_free(p, start, finish)).collect()
    }

    /// The time at which processor `p` becomes permanently idle (its last
    /// booking's end; 0 when never booked). This is the only availability
    /// information the *no-backfill* scheduler variant keeps (Fig. 6).
    pub fn last_free_time(&self, p: ProcId) -> f64 {
        self.busy[p as usize].last().map_or(0.0, |iv| iv.1)
    }

    /// Candidate start times for a placement not before `after`: `after`
    /// itself plus every booking end strictly later than `after`, sorted
    /// and deduplicated.
    pub fn candidate_times(&self, after: f64) -> Vec<f64> {
        let mut times = vec![after];
        for intervals in &self.busy {
            for &(_, end) in intervals {
                if end > after {
                    times.push(end);
                }
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup_by(|a, b| (*a - *b).abs() <= time_eps(*a));
        times
    }

    /// All bookings on processor `p`, in time order (test/debug aid).
    pub fn bookings(&self, p: ProcId) -> &[(f64, f64)] {
        &self.busy[p as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ProcSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn occupy_and_query() {
        let mut tl = Timeline::new(3);
        tl.occupy(&set(&[0, 1]), 0.0, 10.0);
        assert!(!tl.is_free(0, 5.0, 6.0));
        assert!(tl.is_free(2, 0.0, 100.0));
        assert!(tl.is_free(0, 10.0, 20.0), "touching endpoints are free");
        assert_eq!(tl.free_set(0.0, 10.0).to_vec(), vec![2]);
        assert_eq!(tl.free_set(10.0, 20.0).to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn holes_between_bookings_are_found() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 0.0, 5.0);
        tl.occupy(&set(&[0]), 20.0, 30.0);
        assert!(tl.is_free(0, 5.0, 20.0));
        assert!(tl.is_free(0, 6.0, 19.0));
        assert!(!tl.is_free(0, 4.0, 6.0));
        assert!(!tl.is_free(0, 19.0, 21.0));
        assert_eq!(tl.last_free_time(0), 30.0);
    }

    #[test]
    fn out_of_order_occupation_stays_sorted() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 20.0, 30.0);
        tl.occupy(&set(&[0]), 0.0, 5.0); // backfill into the earlier hole
        tl.occupy(&set(&[0]), 5.0, 20.0);
        assert_eq!(tl.bookings(0), &[(0.0, 5.0), (5.0, 20.0), (20.0, 30.0)]);
        assert!(!tl.is_free(0, 0.0, 30.0));
    }

    #[test]
    #[should_panic(expected = "double booking")]
    fn double_booking_panics() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 0.0, 10.0);
        tl.occupy(&set(&[0]), 5.0, 15.0);
    }

    #[test]
    fn candidate_times_are_ready_time_plus_ends() {
        let mut tl = Timeline::new(2);
        tl.occupy(&set(&[0]), 0.0, 5.0);
        tl.occupy(&set(&[1]), 0.0, 8.0);
        tl.occupy(&set(&[0]), 5.0, 12.0);
        assert_eq!(tl.candidate_times(2.0), vec![2.0, 5.0, 8.0, 12.0]);
        assert_eq!(tl.candidate_times(8.0), vec![8.0, 12.0]);
        assert_eq!(tl.candidate_times(50.0), vec![50.0]);
    }

    #[test]
    fn zero_length_interval_is_fine() {
        let mut tl = Timeline::new(1);
        tl.occupy(&set(&[0]), 3.0, 3.0);
        assert!(tl.is_free(0, 0.0, 10.0));
    }
}
