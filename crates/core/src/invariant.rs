//! The [`invariant!`] macro: debug/test-time assertions for hot-path
//! boundary conditions.
//!
//! The placement kernel maintains data-structure invariants (sorted event
//! lists, cleared scratch buffers, acyclic schedule-DAGs) that are too
//! expensive to check on every release-mode call but cheap enough to verify
//! exhaustively under `debug_assertions` and in tests. `invariant!` is the
//! single spelling for those checks: it reads like `assert!`, compiles to
//! nothing in release builds, and marks the condition as a *structural
//! invariant* rather than an input validation (inputs are rejected with
//! typed errors, never asserted).

/// Asserts a structural invariant in debug and test builds only.
///
/// Identical to [`assert!`] when `debug_assertions` (or `cfg(test)`) is
/// enabled; compiles to nothing otherwise, so the condition must be free of
/// side effects.
///
/// # Examples
/// ```
/// use locmps_core::invariant;
///
/// let ends = [1.0f64, 2.0, 5.0];
/// invariant!(
///     ends.windows(2).all(|w| w[0] <= w[1]),
///     "event list must stay sorted"
/// );
/// ```
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => {
        if cfg!(any(debug_assertions, test)) {
            assert!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_invariant_is_silent() {
        invariant!(1 + 1 == 2);
        invariant!(true, "with {} message", "formatted");
    }

    #[test]
    #[should_panic(expected = "broken")]
    fn failing_invariant_panics_under_test() {
        invariant!(false, "broken");
    }
}
