//! Residual-DAG extraction for mid-execution replanning.
//!
//! When processors fail mid-run, a recovery policy may want to re-plan the
//! *rest* of the application from scratch: the tasks not yet done (and not
//! currently running) form a sub-DAG of the original graph, and LoC-MPS can
//! be re-run on that sub-DAG over the surviving cluster. [`ResidualDag`]
//! performs the extraction and keeps both directions of the task-id
//! mapping, since the residual graph is compacted to contiguous ids.
//!
//! Only **data** edges between two pending endpoints survive extraction:
//! pseudo-edges encode placement decisions of the abandoned plan, and a
//! data edge from an already-finished producer is an *input* of the
//! residual computation, not a precedence constraint inside it (the
//! produced blocks are already resident somewhere; the caller's locality
//! model accounts for them separately if it wants to).

use locmps_taskgraph::{EdgeKind, TaskGraph, TaskId};

/// A compacted sub-DAG of pending tasks plus the id mappings back and
/// forth to the parent graph.
#[derive(Debug, Clone)]
pub struct ResidualDag {
    /// The residual graph with contiguous task ids `0..n_pending`.
    pub graph: TaskGraph,
    /// `to_parent[r.index()]` is the parent-graph id of residual task `r`.
    pub to_parent: Vec<TaskId>,
    /// `from_parent[t.index()]` is the residual id of parent task `t`, or
    /// `None` when `t` is not part of the residual.
    pub from_parent: Vec<Option<TaskId>>,
}

impl ResidualDag {
    /// Extracts the sub-DAG of tasks for which `pending` returns true.
    ///
    /// Returns `None` when no task is pending. Task names and execution
    /// profiles are carried over unchanged; ids are compacted in parent-id
    /// order, so extraction is deterministic.
    pub fn extract(g: &TaskGraph, mut pending: impl FnMut(TaskId) -> bool) -> Option<ResidualDag> {
        let mut from_parent: Vec<Option<TaskId>> = vec![None; g.n_tasks()];
        let mut to_parent: Vec<TaskId> = Vec::new();
        let mut graph = TaskGraph::new();
        for t in g.task_ids() {
            if pending(t) {
                let task = g.task(t);
                let r = graph.add_task(task.name.clone(), task.profile.clone());
                from_parent[t.index()] = Some(r);
                to_parent.push(t);
            }
        }
        if to_parent.is_empty() {
            return None;
        }
        for (_, edge) in g.edges() {
            if edge.kind != EdgeKind::Data {
                continue;
            }
            if let (Some(rs), Some(rd)) =
                (from_parent[edge.src.index()], from_parent[edge.dst.index()])
            {
                graph
                    .add_edge(rs, rd, edge.volume)
                    .expect("parent data edges stay valid after compaction");
            }
        }
        Some(ResidualDag {
            graph,
            to_parent,
            from_parent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locmps_speedup::ExecutionProfile;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", ExecutionProfile::linear(10.0));
        let b = g.add_task("b", ExecutionProfile::linear(20.0));
        let c = g.add_task("c", ExecutionProfile::linear(30.0));
        let d = g.add_task("d", ExecutionProfile::linear(40.0));
        g.add_edge(a, b, 5.0).unwrap();
        g.add_edge(a, c, 5.0).unwrap();
        g.add_edge(b, d, 5.0).unwrap();
        g.add_edge(c, d, 5.0).unwrap();
        g
    }

    #[test]
    fn extracts_pending_suffix_with_internal_edges_only() {
        let g = diamond();
        // a done, b running => pending = {c, d}.
        let pending = [false, false, true, true];
        let r = ResidualDag::extract(&g, |t| pending[t.index()]).unwrap();
        assert_eq!(r.graph.n_tasks(), 2);
        assert_eq!(r.to_parent, vec![TaskId(2), TaskId(3)]);
        assert_eq!(
            r.from_parent,
            vec![None, None, Some(TaskId(0)), Some(TaskId(1))]
        );
        // Only the c->d edge survives; the finished/running producers'
        // edges become external inputs and are dropped.
        assert_eq!(r.graph.n_edges(), 1);
        let (_, e) = r.graph.edges().next().unwrap();
        assert_eq!((e.src, e.dst), (TaskId(0), TaskId(1)));
        r.graph.validate().unwrap();
    }

    #[test]
    fn pseudo_edges_do_not_survive_extraction() {
        let mut g = diamond();
        g.add_pseudo_edge(TaskId(1), TaskId(2)).unwrap();
        let r = ResidualDag::extract(&g, |_| true).unwrap();
        assert_eq!(r.graph.n_edges(), 4, "pseudo edge must be dropped");
    }

    #[test]
    fn empty_residual_is_none() {
        let g = diamond();
        assert!(ResidualDag::extract(&g, |_| false).is_none());
    }
}
