//! Compact processor-id bitsets.
//!
//! Scheduling decisions constantly union, intersect and rank small sets of
//! processor ids (machine sizes in the paper top out at 128). A `Vec<u64>`
//! bitset keeps those operations branch-free and allocation-light.

use serde::{Deserialize, Serialize};

/// A processor id: dense indices `0..P`.
pub type ProcId = u32;

const BITS: usize = 64;

/// A set of processor ids, stored as a growable bitmap.
///
/// Sets from the same [`Cluster`](crate::Cluster) can be combined freely;
/// word vectors grow on demand and trailing zero words are ignored by
/// comparisons.
///
/// # Examples
/// ```
/// use locmps_platform::ProcSet;
///
/// let a: ProcSet = [0u32, 1, 2, 3].into_iter().collect();
/// let b: ProcSet = [2u32, 3, 4].into_iter().collect();
/// assert_eq!(a.intersection_len(&b), 2);
/// assert_eq!(a.union(&b).len(), 5);
/// assert_eq!(a.to_vec(), vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcSet {
    words: Vec<u64>,
}

impl ProcSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set `{0, 1, …, n-1}` — "all processors" of an `n`-node cluster.
    pub fn all(n: usize) -> Self {
        let mut s = Self::new();
        for p in 0..n {
            s.insert(p as ProcId);
        }
        s
    }

    /// A singleton set.
    pub fn single(p: ProcId) -> Self {
        let mut s = Self::new();
        s.insert(p);
        s
    }

    /// Inserts `p`; returns whether it was newly added.
    pub fn insert(&mut self, p: ProcId) -> bool {
        let (w, b) = (p as usize / BITS, p as usize % BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `p`; returns whether it was present.
    pub fn remove(&mut self, p: ProcId) -> bool {
        let (w, b) = (p as usize / BITS, p as usize % BITS);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    pub fn contains(&self, p: ProcId) -> bool {
        let (w, b) = (p as usize / BITS, p as usize % BITS);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Number of processors in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((wi * BITS) as ProcId + b)
                }
            })
        })
    }

    /// The members as a sorted vector.
    pub fn to_vec(&self) -> Vec<ProcId> {
        self.iter().collect()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &ProcSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Owned union.
    pub fn union(&self, other: &ProcSet) -> ProcSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Owned intersection.
    pub fn intersection(&self, other: &ProcSet) -> ProcSet {
        let n = self.words.len().min(other.words.len());
        ProcSet {
            words: (0..n).map(|i| self.words[i] & other.words[i]).collect(),
        }
    }

    /// Owned difference `self \ other`.
    pub fn difference(&self, other: &ProcSet) -> ProcSet {
        ProcSet {
            words: self
                .words
                .iter()
                .enumerate()
                .map(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// Number of shared processors — the heart of the locality metric.
    pub fn intersection_len(&self, other: &ProcSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether the sets share no processor.
    pub fn is_disjoint(&self, other: &ProcSet) -> bool {
        self.intersection_len(other) == 0
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &ProcSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Removes every member, keeping the allocated capacity so the set can
    /// be refilled without reallocating (scratch-buffer reuse in hot
    /// scheduling loops).
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// The lowest id in the set.
    pub fn first(&self) -> Option<ProcId> {
        self.iter().next()
    }

    /// Keeps only the `k` lowest-id members (no-op if `len() <= k`).
    pub fn truncate(&mut self, k: usize) {
        if self.len() <= k {
            return;
        }
        let keep: Vec<ProcId> = self.iter().take(k).collect();
        self.words.clear();
        for p in keep {
            self.insert(p);
        }
    }
}

impl PartialEq for ProcSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for ProcSet {}

impl std::hash::Hash for ProcSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Skip trailing zero words so equal sets hash equally.
        let mut end = self.words.len();
        while end > 0 && self.words[end - 1] == 0 {
            end -= 1;
        }
        self.words[..end].hash(state);
    }
}

impl FromIterator<ProcId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcId>>(iter: I) -> Self {
        let mut s = ProcSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl std::fmt::Display for ProcSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcSet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(130)); // crosses a word boundary
        assert!(s.contains(3) && s.contains(130) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.remove(999));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted() {
        let s: ProcSet = [5u32, 1, 200, 64, 63].into_iter().collect();
        assert_eq!(s.to_vec(), vec![1, 5, 63, 64, 200]);
        assert_eq!(s.first(), Some(1));
    }

    #[test]
    fn set_algebra() {
        let a: ProcSet = [0u32, 1, 2, 3].into_iter().collect();
        let b: ProcSet = [2u32, 3, 4, 5].into_iter().collect();
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 1]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!(a.intersection(&b).is_subset(&a));
        let c: ProcSet = [100u32].into_iter().collect();
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = ProcSet::single(1);
        let mut b = ProcSet::single(1);
        b.insert(500);
        b.remove(500); // leaves trailing zero words
        assert_eq!(a, b);
        a.insert(2);
        assert_ne!(a, b);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_members() {
        let mut s: ProcSet = [3u32, 70].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s, ProcSet::new());
        s.insert(5);
        assert_eq!(s.to_vec(), vec![5]);
        // A refilled scratch set equals (and hashes like) a fresh one.
        let fresh = ProcSet::single(5);
        assert_eq!(s, fresh);
    }

    #[test]
    fn all_and_truncate() {
        let mut s = ProcSet::all(10);
        assert_eq!(s.len(), 10);
        s.truncate(4);
        assert_eq!(s.to_vec(), vec![0, 1, 2, 3]);
        s.truncate(9); // no-op
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn display_and_hash() {
        use std::collections::HashSet;
        let a: ProcSet = [2u32, 7].into_iter().collect();
        assert_eq!(a.to_string(), "{2,7}");
        let mut b = a.clone();
        b.insert(300);
        b.remove(300);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b), "equal sets must hash equally");
    }
}
