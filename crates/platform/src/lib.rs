//! The execution-platform model of the paper (§II): a homogeneous compute
//! cluster with a single-port communication model and block-cyclic data
//! layouts.
//!
//! * [`ProcSet`] — a compact bitset of processor ids, the currency of all
//!   mapping decisions (unions/intersections drive the locality logic);
//! * [`Cluster`] — processor count, network bandwidth, and whether
//!   computation and communication overlap (the paper evaluates both);
//! * [`Distribution`] / [`RedistributionMatrix`] — block-cyclic data layouts
//!   and the exact redistribution volume matrix between two layouts, after
//!   Prylli & Tourancheau's fast runtime block-cyclic redistribution [13]:
//!   the communication pattern is periodic with period `lcm(p, q)` blocks,
//!   so one period determines the exact per-processor-pair volumes;
//! * single-port transfer-time bounds and the paper's aggregate-bandwidth
//!   estimate `wt(e) = d / (min(np_i, np_j) · bandwidth)` (§III.B).
#![deny(missing_docs)]

mod blockcyclic;
mod cluster;
mod procset;
mod transfers;

pub use blockcyclic::{redistribution_time, Distribution, RedistributionMatrix};
pub use cluster::{aggregate_edge_cost, Cluster, CommOverlap};
pub use procset::{ProcId, ProcSet};
pub use transfers::{TransferOp, TransferSchedule};

#[cfg(test)]
mod proptests;
