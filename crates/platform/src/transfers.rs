//! Concrete single-port transfer schedules.
//!
//! [`RedistributionMatrix`](crate::RedistributionMatrix) gives the volume
//! each processor pair must exchange and a busy-time *bound*; this module
//! materializes an actual sequence of point-to-point transfers respecting
//! the single-port constraint ("each compute node can participate in no
//! more than one data transfer in any given time-step", §II) — what a
//! runtime system would hand to its communication layer, and evidence that
//! the bound used throughout the schedulers is attainable.
//!
//! The scheduler is greedy LPT (largest transfer first, earliest feasible
//! slot): for non-preemptive transfers this is a 2-approximation of the
//! optimal single-port schedule; with the block-granular transfers of the
//! block-cyclic pattern (all pair volumes within one period are equal) it
//! is optimal in all but adversarial cases, which the tests quantify.

use crate::blockcyclic::RedistributionMatrix;
use crate::procset::ProcId;

/// One point-to-point transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferOp {
    /// Sending processor.
    pub src: ProcId,
    /// Receiving processor.
    pub dst: ProcId,
    /// Payload (MB).
    pub volume: f64,
    /// Start time (s, relative to redistribution start).
    pub start: f64,
    /// End time (s).
    pub end: f64,
}

/// A feasible single-port transfer schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferSchedule {
    /// The transfers, in start order.
    pub ops: Vec<TransferOp>,
    /// Completion time of the last transfer.
    pub duration: f64,
}

impl TransferSchedule {
    /// Builds a greedy LPT single-port schedule for all the non-local
    /// volume of `matrix` at `bandwidth` MB/s.
    pub fn build(matrix: &RedistributionMatrix, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        // Gather non-local pair transfers.
        let src = matrix.src_procs();
        let dst = matrix.dst_procs();
        let mut pending: Vec<(ProcId, ProcId, f64)> = Vec::new();
        for (i, &s) in src.iter().enumerate() {
            for (j, &d) in dst.iter().enumerate() {
                let v = matrix.volume(i, j);
                if s != d && v > 0.0 {
                    pending.push((s, d, v));
                }
            }
        }
        // Largest first; ties by (src, dst) for determinism.
        pending.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));

        use std::collections::BTreeMap;
        // Busy intervals per node, kept sorted. Keyed access only, but a
        // BTreeMap keeps any future iteration deterministic (LX010).
        let mut busy: BTreeMap<ProcId, Vec<(f64, f64)>> = BTreeMap::new();
        let mut ops = Vec::with_capacity(pending.len());
        let mut duration = 0.0f64;
        for (s, d, v) in pending {
            let len = v / bandwidth;
            let start = earliest_gap(busy.get(&s), busy.get(&d), len);
            let end = start + len;
            insert_interval(busy.entry(s).or_default(), (start, end));
            insert_interval(busy.entry(d).or_default(), (start, end));
            duration = duration.max(end);
            ops.push(TransferOp {
                src: s,
                dst: d,
                volume: v,
                start,
                end,
            });
        }
        ops.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.src.cmp(&b.src)));
        TransferSchedule { ops, duration }
    }

    /// Total transferred volume (MB).
    pub fn total_volume(&self) -> f64 {
        self.ops.iter().map(|o| o.volume).sum()
    }
}

/// Earliest start at which both endpoints are idle for `len` seconds.
fn earliest_gap(a: Option<&Vec<(f64, f64)>>, b: Option<&Vec<(f64, f64)>>, len: f64) -> f64 {
    // Candidate starts: 0 and every busy-interval end on either endpoint.
    let mut candidates = vec![0.0f64];
    for list in [a, b].into_iter().flatten() {
        candidates.extend(list.iter().map(|&(_, e)| e));
    }
    candidates.sort_by(|x, y| x.total_cmp(y));
    let fits = |list: Option<&Vec<(f64, f64)>>, s: f64| {
        list.is_none_or(|l| {
            l.iter()
                .all(|&(bs, be)| be <= s + 1e-12 || bs + 1e-12 >= s + len)
        })
    };
    for s in candidates {
        if fits(a, s) && fits(b, s) {
            return s;
        }
    }
    unreachable!("the end of the last interval always fits")
}

fn insert_interval(list: &mut Vec<(f64, f64)>, iv: (f64, f64)) {
    let pos = list.partition_point(|x| x.0 < iv.0);
    list.insert(pos, iv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockcyclic::Distribution;
    use crate::procset::ProcSet;

    fn set(ids: &[u32]) -> ProcSet {
        ids.iter().copied().collect()
    }

    fn schedule_between(
        a: &[u32],
        b: &[u32],
        vol: f64,
        bw: f64,
    ) -> (TransferSchedule, RedistributionMatrix) {
        let m = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&set(a)),
            &Distribution::block_cyclic(&set(b)),
            vol,
        );
        (TransferSchedule::build(&m, bw), m)
    }

    /// No endpoint may run two transfers at once.
    fn assert_single_port(s: &TransferSchedule) {
        for (i, x) in s.ops.iter().enumerate() {
            for y in &s.ops[i + 1..] {
                let share_endpoint =
                    x.src == y.src || x.src == y.dst || x.dst == y.src || x.dst == y.dst;
                if share_endpoint {
                    let overlap = x.start < y.end - 1e-12 && y.start < x.end - 1e-12;
                    assert!(!overlap, "single-port violated: {x:?} overlaps {y:?}");
                }
            }
        }
    }

    #[test]
    fn disjoint_equal_groups_run_fully_parallel() {
        let (s, m) = schedule_between(&[0, 1, 2, 3], &[4, 5, 6, 7], 100.0, 12.5);
        assert_single_port(&s);
        assert!((s.total_volume() - m.nonlocal_volume()).abs() < 1e-9);
        // lcm = 4: each src slot pairs with exactly one dst slot — four
        // parallel transfers of 25 MB: exactly the lower bound.
        assert!((s.duration - m.single_port_time(12.5)).abs() < 1e-9);
    }

    #[test]
    fn fan_out_serializes_at_the_sender() {
        let (s, m) = schedule_between(&[0], &[0, 1, 2, 3], 80.0, 10.0);
        assert_single_port(&s);
        // 60 MB leave proc 0 one transfer at a time: exactly the bound.
        assert!((s.duration - m.single_port_time(10.0)).abs() < 1e-9);
        assert_eq!(s.ops.len(), 3);
    }

    #[test]
    fn mismatched_groups_stay_within_twice_the_bound() {
        for (a, b) in [
            (vec![0u32, 1, 2], vec![1u32, 2, 3, 4]),
            (vec![0u32, 1, 2, 3, 4], vec![2u32, 3]),
            (vec![0u32, 1, 2, 3, 4, 5, 6], vec![3u32, 4, 5, 6, 7, 8]),
        ] {
            let (s, m) = schedule_between(&a, &b, 120.0, 12.5);
            assert_single_port(&s);
            let bound = m.single_port_time(12.5);
            assert!(s.duration + 1e-9 >= bound, "below the busy bound?!");
            assert!(
                s.duration <= 2.0 * bound + 1e-9,
                "LPT exceeded its 2-approximation: {} vs bound {bound}",
                s.duration
            );
            assert!((s.total_volume() - m.nonlocal_volume()).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_when_everything_is_local() {
        let (s, _) = schedule_between(&[0, 1], &[0, 1], 500.0, 12.5);
        assert!(s.ops.is_empty());
        assert_eq!(s.duration, 0.0);
        assert_eq!(s.total_volume(), 0.0);
    }
}
