//! Block-cyclic data layouts and redistribution volumes.
//!
//! The paper (§IV) evaluates all schemes "using a block cyclic distribution
//! of data" and estimates redistribution volumes "using the fast runtime
//! block cyclic data redistribution algorithm presented in [13]" (Prylli &
//! Tourancheau). The key structural fact that makes the fast algorithm work
//! is that when an array distributed block-cyclically over `p` processors is
//! re-laid-out block-cyclically over `q` processors, the block→processor
//! mapping on both sides is periodic with period `lcm(p, q)` blocks, so the
//! per-processor-pair communication volumes are exactly determined by a
//! single period. [`RedistributionMatrix::compute`] implements that.

use serde::{Deserialize, Serialize};

use crate::procset::{ProcId, ProcSet};

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// A block-cyclic distribution of a data object over an ordered processor
/// group: block `i` lives on `procs[i mod p]`.
///
/// The *order* of the group matters for which data lands where; the
/// canonical constructor sorts by processor id (deterministic and matching
/// how processor groups are formed by the schedulers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Distribution {
    procs: Vec<ProcId>,
}

impl Distribution {
    /// Canonical block-cyclic distribution over a processor set (ascending
    /// id order).
    pub fn block_cyclic(procs: &ProcSet) -> Self {
        let v = procs.to_vec();
        assert!(!v.is_empty(), "a distribution needs at least one processor");
        Self { procs: v }
    }

    /// Distribution with an explicit processor order.
    pub fn from_ordered(procs: Vec<ProcId>) -> Self {
        assert!(
            !procs.is_empty(),
            "a distribution needs at least one processor"
        );
        Self { procs }
    }

    /// Group size `p`.
    pub fn n_procs(&self) -> usize {
        self.procs.len()
    }

    /// The ordered processor group.
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// The group as a set.
    pub fn proc_set(&self) -> ProcSet {
        self.procs.iter().copied().collect()
    }

    /// Fraction of the object resident on physical processor `p` (0 if not
    /// in the group; `k/p` where `k` is the number of group slots `p`
    /// occupies — normally `1/p`).
    pub fn share(&self, p: ProcId) -> f64 {
        let slots = self.procs.iter().filter(|&&q| q == p).count();
        slots as f64 / self.procs.len() as f64
    }
}

/// Exact redistribution volumes between two block-cyclic layouts.
///
/// `volume(i, j)` is the number of MB that must move from the `i`-th
/// processor of the source group to the `j`-th processor of the destination
/// group; transfers between *the same physical processor* are local and
/// free.
#[derive(Debug, Clone, PartialEq)]
pub struct RedistributionMatrix {
    src: Vec<ProcId>,
    dst: Vec<ProcId>,
    /// Row-major `p × q` volumes.
    vol: Vec<f64>,
    total: f64,
}

impl RedistributionMatrix {
    /// Computes the exact volume matrix for redistributing `total_volume`
    /// MB from `src` to `dst` layout.
    ///
    /// One `lcm(p, q)`-block period determines the pattern; the data volume
    /// is spread uniformly over the period (the continuous approximation is
    /// exact whenever the block count is a multiple of the period, and
    /// within one block's volume otherwise — the regime the fast runtime
    /// algorithm [13] targets).
    pub fn compute(src: &Distribution, dst: &Distribution, total_volume: f64) -> Self {
        let p = src.n_procs();
        let q = dst.n_procs();
        let period = lcm(p, q);
        let mut vol = vec![0.0; p * q];
        if total_volume > 0.0 {
            let per_block = total_volume / period as f64;
            for k in 0..period {
                vol[(k % p) * q + (k % q)] += per_block;
            }
        }
        Self {
            src: src.procs().to_vec(),
            dst: dst.procs().to_vec(),
            vol,
            total: total_volume.max(0.0),
        }
    }

    /// The ordered source processor group.
    pub fn src_procs(&self) -> &[ProcId] {
        &self.src
    }

    /// The ordered destination processor group.
    pub fn dst_procs(&self) -> &[ProcId] {
        &self.dst
    }

    /// Volume moving from source slot `i` to destination slot `j`.
    pub fn volume(&self, i: usize, j: usize) -> f64 {
        self.vol[i * self.dst.len() + j]
    }

    /// Total redistributed volume (local + remote).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Volume that stays on the same physical processor (no transfer).
    pub fn local_volume(&self) -> f64 {
        let mut local = 0.0;
        for (i, &s) in self.src.iter().enumerate() {
            for (j, &d) in self.dst.iter().enumerate() {
                if s == d {
                    local += self.volume(i, j);
                }
            }
        }
        local
    }

    /// Volume that must cross the network.
    pub fn nonlocal_volume(&self) -> f64 {
        self.total - self.local_volume()
    }

    /// Single-port redistribution time at `bandwidth` MB/s per link.
    ///
    /// Under the single-port model a node's busy time is at least
    /// `(bytes sent + bytes received)/bandwidth` (local volume excluded);
    /// by König's edge-coloring theorem a preemptive schedule attains the
    /// maximum of that bound over all nodes, which is what we return.
    pub fn single_port_time(&self, bandwidth: f64) -> f64 {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        // BTreeMap, not HashMap: the fold below is order-insensitive
        // today, but iteration on a schedule-producing path must stay
        // deterministic by construction (LX010).
        use std::collections::BTreeMap;
        let mut busy: BTreeMap<ProcId, f64> = BTreeMap::new();
        for (i, &s) in self.src.iter().enumerate() {
            for (j, &d) in self.dst.iter().enumerate() {
                if s != d {
                    let v = self.volume(i, j);
                    if v > 0.0 {
                        *busy.entry(s).or_default() += v;
                        *busy.entry(d).or_default() += v;
                    }
                }
            }
        }
        busy.values().fold(0.0f64, |a, &b| a.max(b)) / bandwidth
    }
}

/// Convenience: exact single-port redistribution time between canonical
/// block-cyclic layouts on two processor sets.
///
/// Uses the closed form of the `lcm` cycle instead of materializing the
/// matrix: a slot pair `(i, j)` communicates iff `i ≡ j (mod gcd(p, q))`
/// (Chinese remainder theorem), and then carries exactly `volume / lcm`,
/// so each source slot sends `volume/p` in total and each destination slot
/// receives `volume/q`; locality discounts apply only to physical
/// processors present in both groups. Runs in `O(p + q)` — this sits on the
/// innermost loop of LoCBS's hole search.
///
/// # Examples
/// ```
/// use locmps_platform::{redistribution_time, ProcSet};
///
/// let src = ProcSet::all(2);                       // {0, 1}
/// let dst: ProcSet = [4u32, 5].into_iter().collect();
/// // Disjoint equal-size groups move everything, two lanes in parallel:
/// // 100 MB / (2 × 12.5 MB/s) = 4 s.
/// let t = redistribution_time(&src, &dst, 100.0, 12.5);
/// assert!((t - 4.0).abs() < 1e-9);
/// // The same layout costs nothing.
/// assert_eq!(redistribution_time(&src, &src, 100.0, 12.5), 0.0);
/// ```
pub fn redistribution_time(src: &ProcSet, dst: &ProcSet, volume: f64, bandwidth: f64) -> f64 {
    if volume <= 0.0 || src.is_empty() || dst.is_empty() {
        return 0.0;
    }
    let p = src.len();
    let q = dst.len();
    let g = gcd(p, q);
    let period = lcm(p, q);
    let per_pair = volume / period as f64;

    // Busy time per physical node: sent + received, minus local pairs.
    // Sets are sorted and duplicate-free, so each physical node occupies at
    // most one slot per side; walk both in lockstep (no materialized id
    // vectors — this sits on LoCBS's per-candidate loop) to find shared
    // nodes, tracking each side's slot index.
    let mut max_busy = 0.0f64;
    let mut shared = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    let mut si = src.iter().peekable();
    let mut di = dst.iter().peekable();
    while let (Some(&a), Some(&b)) = (si.peek(), di.peek()) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => {
                si.next();
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                di.next();
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let mut busy = volume / p as f64 + volume / q as f64;
                if i % g == j % g {
                    // The node's send and receive slots talk to each other:
                    // that volume never touches the network, on either side.
                    busy -= 2.0 * per_pair;
                }
                max_busy = max_busy.max(busy);
                shared += 1;
                si.next();
                di.next();
                i += 1;
                j += 1;
            }
        }
    }
    // A send-only node is busy exactly `volume/p`, a receive-only node
    // `volume/q`; `max` is order-independent, so one comparison per side
    // replaces the per-node loop.
    if shared < p {
        max_busy = max_busy.max(volume / p as f64);
    }
    if shared < q {
        max_busy = max_busy.max(volume / q as f64);
    }
    max_busy.max(0.0) / bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ProcSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn identical_layout_is_all_local() {
        let d = Distribution::block_cyclic(&set(&[0, 1, 2, 3]));
        let m = RedistributionMatrix::compute(&d, &d, 100.0);
        assert!((m.local_volume() - 100.0).abs() < 1e-9);
        assert!(m.nonlocal_volume().abs() < 1e-9);
        assert_eq!(m.single_port_time(12.5), 0.0);
    }

    #[test]
    fn disjoint_groups_move_everything() {
        let s = Distribution::block_cyclic(&set(&[0, 1]));
        let d = Distribution::block_cyclic(&set(&[2, 3]));
        let m = RedistributionMatrix::compute(&s, &d, 100.0);
        assert!((m.nonlocal_volume() - 100.0).abs() < 1e-9);
        // lcm(2,2)=2: proc 0 -> proc 2 (50), proc 1 -> proc 3 (50); each
        // node busy 50 MB -> 4 s at 12.5 MB/s.
        assert!((m.single_port_time(12.5) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn one_to_many_spreads_data() {
        let s = Distribution::block_cyclic(&set(&[0]));
        let d = Distribution::block_cyclic(&set(&[0, 1, 2, 3]));
        let m = RedistributionMatrix::compute(&s, &d, 80.0);
        // 1/4 stays on proc 0, the rest fans out 20 MB each.
        assert!((m.local_volume() - 20.0).abs() < 1e-9);
        assert!((m.nonlocal_volume() - 60.0).abs() < 1e-9);
        // Sender busy 60 MB; receivers 20 each: bottleneck is the sender.
        assert!((m.single_port_time(10.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn volume_is_conserved() {
        let s = Distribution::block_cyclic(&set(&[0, 1, 2]));
        let d = Distribution::block_cyclic(&set(&[1, 2, 3, 4]));
        let m = RedistributionMatrix::compute(&s, &d, 55.0);
        let sum: f64 = (0..3)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| m.volume(i, j))
            .sum();
        assert!((sum - 55.0).abs() < 1e-9);
        assert!((m.local_volume() + m.nonlocal_volume() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn lcm_period_pattern_2_to_3() {
        // p=2 {0,1}, q=3 {0,1,2}: period 6; blocks k: src k%2, dst k%3.
        // pairs: (0,0),(1,1),(0,2),(1,0),(0,1),(1,2) — each 1/6 of volume.
        let s = Distribution::block_cyclic(&set(&[0, 1]));
        let d = Distribution::block_cyclic(&set(&[0, 1, 2]));
        let m = RedistributionMatrix::compute(&s, &d, 60.0);
        assert!((m.volume(0, 0) - 10.0).abs() < 1e-9);
        assert!((m.volume(0, 1) - 10.0).abs() < 1e-9);
        assert!((m.volume(0, 2) - 10.0).abs() < 1e-9);
        assert!((m.volume(1, 0) - 10.0).abs() < 1e-9);
        // local: (0,0) and (1,1) = 20.
        assert!((m.local_volume() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn aligned_overlapping_groups_keep_shared_data_local() {
        // Shrinking {0,1,2,3} -> {0,1}: lcm 4, blocks map (0->0),(1->1),
        // (2->0),(3->1): the halves already on 0 and 1 stay put.
        let a = set(&[0, 1, 2, 3]);
        let b = set(&[0, 1]);
        let m = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&a),
            &Distribution::block_cyclic(&b),
            100.0,
        );
        assert!((m.local_volume() - 50.0).abs() < 1e-9);
        assert!((m.nonlocal_volume() - 50.0).abs() < 1e-9);
        // Completely disjoint same-size target moves strictly more.
        let c = set(&[4, 5]);
        let m2 = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&a),
            &Distribution::block_cyclic(&c),
            100.0,
        );
        assert!(m2.nonlocal_volume() > m.nonlocal_volume());
    }

    #[test]
    fn shifted_equal_size_groups_have_no_locality() {
        // {0,1,2,3} -> {2,3,4,5}: slot alignment shifts, so even the shared
        // physical processors 2 and 3 receive *different* blocks than they
        // hold — block-cyclic redistribution moves everything.
        let a = set(&[0, 1, 2, 3]);
        let b = set(&[2, 3, 4, 5]);
        let m = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&a),
            &Distribution::block_cyclic(&b),
            100.0,
        );
        assert_eq!(m.local_volume(), 0.0);
        assert!((m.nonlocal_volume() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn redistribution_time_convenience() {
        assert_eq!(
            redistribution_time(&set(&[0]), &set(&[0]), 100.0, 12.5),
            0.0
        );
        assert_eq!(redistribution_time(&set(&[0]), &set(&[1]), 0.0, 12.5), 0.0);
        let t = redistribution_time(&set(&[0]), &set(&[1]), 100.0, 12.5);
        assert!((t - 8.0).abs() < 1e-9);
    }

    #[test]
    fn share_accounting() {
        let d = Distribution::block_cyclic(&set(&[3, 7]));
        assert_eq!(d.share(3), 0.5);
        assert_eq!(d.share(7), 0.5);
        assert_eq!(d.share(0), 0.0);
        assert_eq!(d.n_procs(), 2);
    }
}
