//! The homogeneous cluster model of §II.

use serde::{Deserialize, Serialize};

/// Whether computation and communication overlap on this system.
///
/// The paper's primary model assumes full overlap ("most clusters today are
/// equipped with high performance interconnects which provide asynchronous
/// communication calls"); Figures 8(b)/11 evaluate the no-overlap case where
/// communication involves I/O at the endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommOverlap {
    /// Transfers proceed concurrently with computation on the endpoints.
    Full,
    /// The receiving processors are busy during redistribution: transfer
    /// time adds to the task's occupancy of its processor set.
    None,
}

/// A homogeneous compute cluster: `P` identical nodes on a network of
/// uniform per-link bandwidth, single-port model (each node participates in
/// at most one transfer per time step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Number of processors `P`.
    pub n_procs: usize,
    /// Per-link bandwidth in MB/s (the paper's synthetic setup uses a
    /// 100 Mbit/s fast ethernet ⇒ 12.5 MB/s).
    pub bandwidth: f64,
    /// Computation/communication overlap regime.
    pub overlap: CommOverlap,
    /// Block size of the block-cyclic layouts, in MB of payload per block.
    /// Only the *ratio* of volumes matters for redistribution patterns; the
    /// default (1.0) keeps volumes and block counts aligned.
    pub block_mb: f64,
}

impl Cluster {
    /// A fully-overlapped cluster with the given size and bandwidth.
    pub fn new(n_procs: usize, bandwidth: f64) -> Self {
        assert!(n_procs >= 1, "a cluster needs at least one processor");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Self {
            n_procs,
            bandwidth,
            overlap: CommOverlap::Full,
            block_mb: 1.0,
        }
    }

    /// Same cluster with the no-overlap communication regime.
    pub fn without_overlap(mut self) -> Self {
        self.overlap = CommOverlap::None;
        self
    }

    /// The paper's synthetic-experiment network: 100 Mbps fast ethernet.
    pub fn fast_ethernet(n_procs: usize) -> Self {
        Self::new(n_procs, 12.5)
    }

    /// A 2 Gbps Myrinet-like interconnect (the paper's application testbed).
    pub fn myrinet(n_procs: usize) -> Self {
        Self::new(n_procs, 250.0)
    }
}

/// The paper's aggregate communication-cost estimate for an edge (§III.B):
///
/// `wt(e_ij) = d_ij / bw_ij`, with `bw_ij = min(np(t_i), np(t_j)) ·
/// bandwidth` — widening either endpoint raises the degree of parallel
/// transfer.
///
/// `volume` in MB, result in seconds. Zero volume costs zero regardless of
/// allocations.
pub fn aggregate_edge_cost(volume: f64, np_src: usize, np_dst: usize, bandwidth: f64) -> f64 {
    if volume <= 0.0 {
        return 0.0;
    }
    let lanes = np_src.min(np_dst).max(1) as f64;
    volume / (lanes * bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let c = Cluster::fast_ethernet(32);
        assert_eq!(c.n_procs, 32);
        assert_eq!(c.bandwidth, 12.5);
        assert_eq!(c.overlap, CommOverlap::Full);
        assert_eq!(Cluster::myrinet(8).bandwidth, 250.0);
        assert_eq!(
            Cluster::new(4, 1.0).without_overlap().overlap,
            CommOverlap::None
        );
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_panics() {
        Cluster::new(0, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let c = Cluster::fast_ethernet(64).without_overlap();
        let json = serde_json::to_string(&c).unwrap();
        let back: Cluster = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn aggregate_cost_matches_formula() {
        // 100 MB between a 4-proc producer and a 2-proc consumer at 12.5
        // MB/s: bw = 2 * 12.5 = 25 MB/s -> 4 s.
        assert!((aggregate_edge_cost(100.0, 4, 2, 12.5) - 4.0).abs() < 1e-12);
        // Widening the narrow side halves the cost.
        assert!((aggregate_edge_cost(100.0, 4, 4, 12.5) - 2.0).abs() < 1e-12);
        // Widening the wide side does nothing.
        assert!((aggregate_edge_cost(100.0, 8, 2, 12.5) - 4.0).abs() < 1e-12);
        assert_eq!(aggregate_edge_cost(0.0, 1, 1, 12.5), 0.0);
    }
}
