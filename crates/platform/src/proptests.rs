//! Property-based tests for processor sets and redistribution.

use proptest::prelude::*;

use crate::blockcyclic::{redistribution_time, Distribution, RedistributionMatrix};
use crate::cluster::aggregate_edge_cost;
use crate::procset::ProcSet;
use crate::transfers::TransferSchedule;

fn arb_procset() -> impl Strategy<Value = ProcSet> {
    proptest::collection::btree_set(0u32..96, 1..16).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn set_algebra_laws(a in arb_procset(), b in arb_procset()) {
        let union = a.union(&b);
        let inter = a.intersection(&b);
        prop_assert!(inter.is_subset(&a) && inter.is_subset(&b));
        prop_assert!(a.is_subset(&union) && b.is_subset(&union));
        // Inclusion-exclusion on cardinalities.
        prop_assert_eq!(union.len() + inter.len(), a.len() + b.len());
        // Difference partitions.
        let diff = a.difference(&b);
        prop_assert_eq!(diff.len() + inter.len(), a.len());
        prop_assert!(diff.is_disjoint(&b));
        prop_assert_eq!(a.intersection_len(&b), inter.len());
    }

    #[test]
    fn iter_round_trip(a in arb_procset()) {
        let v = a.to_vec();
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        let back: ProcSet = v.into_iter().collect();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn redistribution_conserves_volume(a in arb_procset(), b in arb_procset(), vol in 0.0..1000.0f64) {
        let m = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&a),
            &Distribution::block_cyclic(&b),
            vol,
        );
        let p = a.len();
        let q = b.len();
        let sum: f64 = (0..p).flat_map(|i| (0..q).map(move |j| (i, j)))
            .map(|(i, j)| m.volume(i, j)).sum();
        prop_assert!((sum - vol).abs() <= 1e-9 * vol.max(1.0));
        prop_assert!(m.local_volume() >= -1e-12);
        prop_assert!(m.nonlocal_volume() >= -1e-9);
    }

    #[test]
    fn same_set_is_free(a in arb_procset(), vol in 0.0..1000.0f64) {
        let t = redistribution_time(&a, &a, vol, 12.5);
        prop_assert_eq!(t, 0.0);
    }

    #[test]
    fn disjoint_sets_move_everything(vol in 1.0..1000.0f64) {
        let a: ProcSet = (0u32..4).collect();
        let b: ProcSet = (10u32..14).collect();
        let m = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&a),
            &Distribution::block_cyclic(&b),
            vol,
        );
        prop_assert!((m.nonlocal_volume() - vol).abs() <= 1e-9 * vol);
    }

    #[test]
    fn single_port_time_sandwiched_by_bandwidth_bounds(
        a in arb_procset(), b in arb_procset(), vol in 1.0..1000.0f64
    ) {
        let bw = 12.5;
        let t = redistribution_time(&a, &b, vol, bw);
        let m = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&a),
            &Distribution::block_cyclic(&b),
            vol,
        );
        // Never faster than perfectly parallel transfer of the non-local
        // volume over min(p, q) lanes; never slower than serializing it all
        // through one port.
        let lanes = a.len().min(b.len()) as f64;
        prop_assert!(t * (1.0 + 1e-9) >= m.nonlocal_volume() / (lanes * bw));
        prop_assert!(t <= 2.0 * m.nonlocal_volume() / bw + 1e-9);
        prop_assert!(t >= 0.0);
    }

    #[test]
    fn fast_single_port_time_matches_the_matrix(
        a in arb_procset(), b in arb_procset(), vol in 0.0..1000.0f64
    ) {
        let bw = 12.5;
        let fast = redistribution_time(&a, &b, vol, bw);
        let exact = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&a),
            &Distribution::block_cyclic(&b),
            vol,
        )
        .single_port_time(bw);
        prop_assert!(
            (fast - exact).abs() <= 1e-9 * exact.max(1.0),
            "closed form {fast} != matrix {exact} for {a} -> {b}"
        );
    }

    #[test]
    fn transfer_schedules_are_feasible_and_near_optimal(
        a in arb_procset(), b in arb_procset(), vol in 0.0..500.0f64
    ) {
        let bw = 12.5;
        let m = RedistributionMatrix::compute(
            &Distribution::block_cyclic(&a),
            &Distribution::block_cyclic(&b),
            vol,
        );
        let s = TransferSchedule::build(&m, bw);
        // Volume conservation.
        prop_assert!((s.total_volume() - m.nonlocal_volume()).abs() <= 1e-9 * vol.max(1.0));
        // Single-port feasibility.
        for (i, x) in s.ops.iter().enumerate() {
            prop_assert!(x.end >= x.start);
            for y in &s.ops[i + 1..] {
                let shared = x.src == y.src || x.src == y.dst
                    || x.dst == y.src || x.dst == y.dst;
                if shared {
                    prop_assert!(
                        x.end <= y.start + 1e-9 || y.end <= x.start + 1e-9,
                        "endpoint double-booked: {x:?} vs {y:?}"
                    );
                }
            }
        }
        // Sandwiched by the busy bound and LPT's 2-approximation.
        let bound = m.single_port_time(bw);
        prop_assert!(s.duration + 1e-9 >= bound);
        prop_assert!(s.duration <= 2.0 * bound + 1e-9);
    }

    #[test]
    fn wider_groups_never_slow_the_paper_estimate(
        vol in 1.0..500.0f64, p in 1usize..32, q in 1usize..32
    ) {
        let bw = 12.5;
        let base = aggregate_edge_cost(vol, p, q, bw);
        prop_assert!(aggregate_edge_cost(vol, p + 1, q, bw) <= base + 1e-12);
        prop_assert!(aggregate_edge_cost(vol, p, q + 1, bw) <= base + 1e-12);
    }
}
