//! # locmps — Locality Conscious Mixed-Parallel Scheduling
//!
//! A from-scratch Rust reproduction of *Locality Conscious Processor
//! Allocation and Scheduling for Mixed Parallel Applications* (Vydyanathan,
//! Krishnamoorthy, Sabin, Catalyurek, Kurc, Sadayappan, Saltz — IEEE
//! CLUSTER 2006).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`speedup`] — moldable-task execution-time models (Downey, Amdahl,
//!   profiled tables);
//! * [`taskgraph`] — the weighted-DAG application model: levels, critical
//!   paths, concurrency sets, pseudo-edges;
//! * [`platform`] — cluster model, processor sets, block-cyclic data
//!   redistribution, single-port communication;
//! * [`core`] — the paper's contribution: the LoC-MPS allocation loop and
//!   the LoCBS locality-conscious backfill scheduler;
//! * [`baselines`] — the comparison schedulers: CPR, CPA, TSAS, iCASLB
//!   (communication-blind LoC-MPS), pure TASK and pure DATA parallel;
//! * [`sim`] — a discrete-event execution simulator and schedule validator;
//! * [`workloads`] — synthetic TGFF-like DAGs, TCE CCSD-T1 and Strassen
//!   application graphs;
//! * [`runtime`] — an online (run-time) execution framework with pluggable
//!   dispatch policies (the paper's future-work item §VI(2));
//! * [`viz`] — SVG Gantt charts and layered task-graph drawings;
//! * [`analysis`] — static diagnostics: `LMxxx` lints over task graphs,
//!   speedup profiles and schedules (see `docs/DIAGNOSTICS.md`).
//!
//! ## Quickstart
//!
//! ```
//! use locmps::prelude::*;
//!
//! // Build the 4-task diamond from Figure 1 of the paper.
//! let mut g = TaskGraph::new();
//! let t1 = g.add_task("T1", ExecutionProfile::linear(40.0));
//! let t2 = g.add_task("T2", ExecutionProfile::linear(21.0));
//! let t3 = g.add_task("T3", ExecutionProfile::linear(10.0));
//! let t4 = g.add_task("T4", ExecutionProfile::linear(32.0));
//! g.add_edge(t1, t2, 0.0).unwrap();
//! g.add_edge(t1, t3, 0.0).unwrap();
//! g.add_edge(t2, t4, 0.0).unwrap();
//! g.add_edge(t3, t4, 0.0).unwrap();
//!
//! let cluster = Cluster::new(4, 100.0);
//! let schedule = LocMps::new(LocMpsConfig::default())
//!     .schedule(&g, &cluster)
//!     .unwrap();
//! assert!(schedule.makespan() > 0.0);
//! ```
#![deny(missing_docs)]

pub use locmps_analysis as analysis;
pub use locmps_baselines as baselines;
pub use locmps_core as core;
pub use locmps_platform as platform;
pub use locmps_runtime as runtime;
pub use locmps_sim as sim;
pub use locmps_speedup as speedup;
pub use locmps_taskgraph as taskgraph;
pub use locmps_viz as viz;
pub use locmps_workloads as workloads;

/// Convenience prelude bringing the most-used types into scope.
pub mod prelude {
    pub use locmps_core::{LocMps, LocMpsConfig, Schedule, Scheduler};
    pub use locmps_platform::{Cluster, CommOverlap, ProcSet};
    pub use locmps_speedup::{DowneyParams, ExecutionProfile, SpeedupModel};
    pub use locmps_taskgraph::{TaskGraph, TaskId};
}
