//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and the `Rng`
//! extension-trait subset the workspace uses (`gen`, `gen_range`,
//! `gen_bool`). The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic across platforms, which is all the workloads and
//! simulator need (the real crate's exact streams are not reproduced;
//! every consumer in this repository treats seeds as opaque).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types `Rng::gen` can produce, mirroring the `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u32, u64, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A sample of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman & Vigna), seeded via
    /// SplitMix64 like the reference implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0.5..=2.5f64);
            assert!((0.5..=2.5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
