//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses JSON
//! text back into it. Floats print through Rust's `Display`, which is
//! shortest-round-trip since Rust 1.0 — the real crate's `float_roundtrip`
//! feature is therefore always on.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Never fails for the value shapes this workspace produces; the `Result`
/// mirrors the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// A non-finite float (`NaN`, `+inf`, `-inf`) reached a JSON boundary.
///
/// JSON has no encoding for these values: the permissive writers map them
/// to `null`, which silently destroys the number. Emitters that must never
/// produce a lossy or unparseable document (benchmark reports, the serve
/// daemon) use the `*_checked` entry points and surface this error instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteFloat {
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for NonFiniteFloat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "non-finite float `{}` has no JSON encoding", self.value)
    }
}

impl std::error::Error for NonFiniteFloat {}

impl From<NonFiniteFloat> for Error {
    fn from(e: NonFiniteFloat) -> Self {
        Error(e.to_string())
    }
}

/// Formats one float as a JSON number token — shortest text that parses
/// back to the identical bits (Rust's `Display`), with a `.0` suffix when
/// the value would otherwise look integral.
///
/// This is the single guarded float→JSON helper every hand-rolled emitter
/// in the workspace routes through.
///
/// # Errors
/// [`NonFiniteFloat`] for `NaN`/`±inf` — the caller decides how to reject
/// the document, nothing invalid is ever emitted.
pub fn fmt_float(f: f64) -> Result<String, NonFiniteFloat> {
    if !f.is_finite() {
        return Err(NonFiniteFloat { value: f });
    }
    let mut out = String::new();
    write_float(f, &mut out);
    Ok(out)
}

/// Formats one float as a fixed-precision JSON number token (for reports
/// whose layout should stay human-diffable), with the same non-finite
/// guard as [`fmt_float`].
///
/// # Errors
/// [`NonFiniteFloat`] for `NaN`/`±inf`.
pub fn fmt_float_fixed(f: f64, precision: usize) -> Result<String, NonFiniteFloat> {
    if !f.is_finite() {
        return Err(NonFiniteFloat { value: f });
    }
    Ok(format!("{f:.precision$}"))
}

/// Serializes `value` as compact JSON, erroring on any non-finite float in
/// the tree instead of encoding it as `null`.
///
/// # Errors
/// [`Error`] wrapping [`NonFiniteFloat`] naming the offending value.
pub fn to_string_checked<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_value();
    check_finite(&v)?;
    let mut out = String::new();
    write_value(&v, &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON with the same non-finite
/// rejection as [`to_string_checked`].
///
/// # Errors
/// [`Error`] wrapping [`NonFiniteFloat`] naming the offending value.
pub fn to_string_pretty_checked<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_value();
    check_finite(&v)?;
    let mut out = String::new();
    write_value(&v, &mut out, Some(2), 0);
    Ok(out)
}

fn check_finite(v: &Value) -> Result<(), NonFiniteFloat> {
    match v {
        Value::Float(f) if !f.is_finite() => Err(NonFiniteFloat { value: *f }),
        Value::Array(items) => items.iter().try_for_each(check_finite),
        Value::Object(entries) => entries.iter().try_for_each(|(_, v)| check_finite(v)),
        _ => Ok(()),
    }
}

/// Parses JSON text into a `T`.
///
/// # Errors
/// Reports syntax errors and shape mismatches with a position-free message
/// (this stand-in keeps no span information).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    }
    .parse_document()?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// ------------------------------------------------------------- rendering

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(items.iter(), out, indent, depth, ('[', ']'), write_value),
        Value::Object(entries) => write_seq(
            entries.iter(),
            out,
            indent,
            depth,
            ('{', '}'),
            |(k, val), out, indent, depth| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
    }
    if let Some(step) = indent {
        if !empty {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // Keep the number recognizably floating-point (serde_json does too).
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing input at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error("unexpected end of input".into()))?
        {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = str_next_char(rest).ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Value::Int(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

/// Decodes the first UTF-8 character of `bytes` (the parser only lands on
/// character boundaries, so the leading byte determines the width).
fn str_next_char(bytes: &[u8]) -> Option<char> {
    let width = match *bytes.first()? {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    };
    std::str::from_utf8(bytes.get(..width)?)
        .ok()?
        .chars()
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("A \"quoted\"\nline".into())),
            (
                "words".into(),
                Value::Array(vec![Value::UInt(u64::MAX), Value::Int(-3)]),
            ),
            ("x".into(), Value::Float(0.1)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e300, 5e-324, -2.5, 12.5] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn u64_is_exact() {
        let words: Vec<u64> = vec![u64::MAX, 1 << 63, 0];
        let s = to_string(&words).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, words);
    }

    #[test]
    fn guarded_float_helpers_reject_non_finite() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(fmt_float(bad).is_err(), "{bad}");
            assert!(fmt_float_fixed(bad, 3).is_err(), "{bad}");
        }
        assert_eq!(fmt_float(2.0).unwrap(), "2.0");
        assert_eq!(fmt_float(0.1).unwrap(), "0.1");
        assert_eq!(fmt_float_fixed(1.0 / 3.0, 3).unwrap(), "0.333");
        // Every accepted token must be a valid JSON number.
        for good in [0.0, -2.5, 1e300, 5e-324, 12.0] {
            let tok = fmt_float(good).unwrap();
            let back: f64 = from_str(&tok).unwrap();
            assert_eq!(back, good, "{tok}");
        }
    }

    #[test]
    fn checked_serialization_rejects_nested_non_finite() {
        let poisoned = Value::Object(vec![(
            "rows".into(),
            Value::Array(vec![Value::Float(1.5), Value::Float(f64::INFINITY)]),
        )]);
        let err = to_string_checked(&poisoned).unwrap_err().to_string();
        assert!(err.contains("non-finite"), "{err}");
        assert!(to_string_pretty_checked(&poisoned).is_err());
        // The permissive writer still nulls it (backwards compatible)...
        assert!(to_string(&poisoned).unwrap().contains("null"));
        // ...and clean trees pass the checked path unchanged.
        let clean = Value::Array(vec![Value::Float(0.1), Value::UInt(7)]);
        assert_eq!(
            to_string_checked(&clean).unwrap(),
            to_string(&clean).unwrap()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
