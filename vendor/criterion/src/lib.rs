//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the harness surface the workspace's `harness = false`
//! benches use: [`Criterion::benchmark_group`]/[`Criterion::bench_function`],
//! [`BenchmarkGroup`] with `sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical engine it runs a short warm-up, then `sample_size` timed
//! samples, and prints min/median/mean per benchmark — enough to compare
//! orders of magnitude, not to detect 1% regressions.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver. One instance is shared by all groups in a run.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark (an implicit one-entry group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().label, sample_size, f);
        self
    }
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, keeping its result alive via
    /// [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Picks an iteration count targeting ~5 ms per sample, then runs
/// `samples` timed samples and prints a one-line summary.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up and calibration: double iters until one sample is >= 1 ms.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 2;
    };
    let target = (0.005 / per_iter.max(1e-12)).ceil() as u64;
    let iters = target.clamp(1, 10_000_000);

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(f64::total_cmp);
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "bench {label:<45} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples,
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into one runner function, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_functions() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_function("inc", |b| {
            ran += 1;
            b.iter(|| black_box(1 + 1))
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
        assert_eq!(BenchmarkId::new("f", 7).label, "f/7");
    }
}
