//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Reimplements the subset of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/collection strategies,
//! `any::<T>()`, `Just`, `prop_oneof!`, the `proptest!` test-harness macro
//! and the `prop_assert*` family. Cases are generated from a deterministic
//! per-test RNG (seeded by hashing the test name), so failures reproduce
//! across runs. **No shrinking** is performed — a failing case reports the
//! case number and message and panics immediately; paste the values from
//! the panic message to debug.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`cases` = number of generated inputs).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case: the message carried back to the harness.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The deterministic case generator handed to strategies: SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded by hashing `name` (stable across runs/platforms).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the only combinator this
    /// workspace uses).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(61) as i32 - 30;
        m * 2f64.powi(e)
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// A uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; size is best-effort (duplicates
    /// collapse, like real proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of `element` values with target size in `size`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so narrow domains cannot loop forever.
            for _ in 0..(n * 8).max(8) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`", l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// The property-test harness macro: each `fn name(x in strategy, ...)`
/// becomes a `#[test]` that runs `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property `{}` failed at case {}/{}: {}", stringify!($name), case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        let s = (1usize..5, 0.5..1.5f64).prop_map(|(n, x)| n as f64 * x);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((0.5..6.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn oneof_and_collections_work() {
        let mut rng = crate::TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u32), Just(2u32)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(crate::Strategy::generate(&s, &mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1u32, 2]);
        let vs = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&vs, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_and_passes(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn harness_reports_failures() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn failing(x in 0u64..10) {
                prop_assert!(x > 1000, "x was {x}");
            }
        }
        failing();
    }
}
