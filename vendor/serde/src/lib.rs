//! Offline stand-in for the `serde` crate.
//!
//! The build container for this repository has no network access and no
//! crate registry cache, so the workspace vendors a minimal, API-compatible
//! subset of its external dependencies (see `vendor/README.md`). This crate
//! keeps the two traits and the derive-macro surface the workspace actually
//! uses; instead of serde's visitor-based zero-copy data model it routes
//! everything through an owned [`Value`] tree, which `serde_json` (also
//! vendored) renders to and parses from JSON text.
//!
//! Supported surface:
//! * `#[derive(Serialize, Deserialize)]` on plain structs, tuple structs
//!   and enums (externally tagged, like real serde's default);
//! * implementations for the primitives, `String`, `Vec<T>`, `Box<T>`,
//!   `Option<T>` and tuples used by this workspace.

/// An owned JSON-like value tree: the data model every serializable type
/// converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers (kept exact; `u64` cannot round-trip through
    /// `f64` — `ProcSet` bitmap words need all 64 bits).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    /// Everything else numeric.
    Float(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable mismatch description.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// A "expected X" error.
    pub fn expected(what: impl std::fmt::Display) -> Self {
        DeError(format!("expected {what}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in an object's entries.
pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `v`, reporting shape mismatches as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n).map_err(|_| DeError::expected(stringify!($t))),
                    Value::Int(n) => <$t>::try_from(*n).map_err(|_| DeError::expected(stringify!($t))),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n).map_err(|_| DeError::expected(stringify!($t))),
                    Value::Int(n) => <$t>::try_from(*n).map_err(|_| DeError::expected(stringify!($t))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json has no NaN literal
                    _ => Err(DeError::expected("number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("tuple array"))?;
                Ok(($($t::from_value(a.get($n).ok_or_else(|| DeError::expected("tuple element"))?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(false)).is_err());
        assert!(field(&[], "missing").is_err());
    }
}
