//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` facade without `syn`/`quote`: the input item is parsed
//! by a small hand-rolled token walker that understands exactly the shapes
//! this workspace uses — named-field structs, tuple structs, and enums with
//! unit / newtype / tuple / struct variants (externally tagged, matching
//! real serde's default representation). Generics and `#[serde(...)]`
//! attributes are intentionally unsupported and fail loudly at compile
//! time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — arity only.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (vendored facade).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => gen_serialize(&p).parse().expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

/// Derives `serde::Deserialize` (vendored facade).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => gen_deserialize(&p).parse().expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error token stream parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected type name")?;
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in: generic type `{name}` is unsupported"
        ));
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            _ => return Err("unsupported struct body".into()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("expected enum body".into()),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Parsed { name, shape })
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on commas that sit outside `<...>` nesting.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            ident_at(&part, i).ok_or_else(|| "expected field name".to_string())
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            let name = ident_at(&part, i).ok_or("expected variant name")?;
            i += 1;
            let kind = match part.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream())?)
                }
                _ => return Err(format!("unsupported variant shape for `{name}`")),
            };
            Ok(Variant { name, kind })
        })
        .collect()
}

// ------------------------------------------------------------- generation

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Object(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(obj, {f:?})?)?")
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(a.get({i}).ok_or_else(|| ::serde::DeError::expected(\"tuple element\"))?)?"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{})",
                        v.name, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(a.get({i}).ok_or_else(|| ::serde::DeError::expected(\"variant element\"))?)?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let a = inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array variant\"))?; ::std::result::Result::Ok({name}::{vn}({})) }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::field(obj, {f:?})?)?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let obj = inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"struct variant\"))?; ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                   ::serde::Value::Str(s) => match s.as_str() {{ {unit}\n _ => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown {name} variant `{{s}}`\"))) }},\n\
                   ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                     let (tag, inner) = &m[0];\n\
                     match tag.as_str() {{ {tagged}\n _ => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown {name} variant `{{tag}}`\"))) }}\n\
                   }},\n\
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\")),\n\
                 }}",
                unit = if unit_arms.is_empty() { String::new() } else { unit_arms.join(",\n ") + "," },
                tagged = if tagged_arms.is_empty() { String::new() } else { tagged_arms.join(",\n ") + "," },
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n  fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
    )
}
