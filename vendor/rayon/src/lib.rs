//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements the one parallel-iterator chain this workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — with `std::thread`
//! scoped threads instead of a work-stealing pool. Items are split into
//! contiguous chunks, one per available core, and results are reassembled
//! in input order, so the chain is a drop-in, deterministic-output
//! replacement.

/// The traits the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `par_iter()` on borrowable collections.
pub trait IntoParallelRefIterator<'a> {
    /// The element type iterated over (a reference).
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator (pre-`map`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on scoped threads and gathers results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map_or(1, |c| c.get())
            .min(n.max(1));
        if workers <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut chunks: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            chunks = handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect();
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
