//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements the one parallel-iterator chain this workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — on a **lazy global
//! worker pool** instead of per-call `std::thread::scope` spawning. The
//! pool is created on first use, its threads live for the process, and
//! each `collect` submits one *batch* whose items are claimed index-by
//! -index from a shared atomic cursor (chunk-queue work stealing): a slow
//! item never straggles a whole pre-cut chunk behind it, and a second
//! batch submitted while the first is draining is served by whichever
//! workers free up first.
//!
//! Results are written into per-index slots, so output order always equals
//! input order and the chain stays a drop-in, deterministic-output
//! replacement.
//!
//! Two degenerate paths never touch the pool: single-item inputs and
//! single-thread configurations run the map inline on the caller. The
//! worker count honors the `LOCMPS_THREADS` environment variable (read
//! once per process) and otherwise defaults to the machine's available
//! parallelism.
//!
//! The submitting thread always participates in draining its own batch,
//! which makes nested `par_iter` calls deadlock-free by construction: even
//! when every pool worker is busy with outer batches, the inner caller
//! claims and runs all of its own items.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The traits the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Parses a `LOCMPS_THREADS`-style override: a positive integer, anything
/// else (absent, empty, garbage, zero) falls back to `None`.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The number of threads the pool runs with (callers included): the
/// `LOCMPS_THREADS` override when set, otherwise the machine's available
/// parallelism. Read once; stable for the process lifetime.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        parse_threads(std::env::var("LOCMPS_THREADS").ok().as_deref())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |c| c.get()))
    })
}

/// Type-erased batch job: run item `i`. The pointee lives on the
/// submitting caller's stack; see the safety argument on [`Batch`].
type RawJob = *const (dyn Fn(usize) + Sync + 'static);

/// Completion bookkeeping of one batch, behind the batch mutex.
struct BatchState {
    /// Items whose execution has returned (or unwound).
    completed: usize,
    /// First panic payload observed while running an item.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One submitted `par_iter` batch: an erased job plus a shared claim
/// cursor.
///
/// # Safety
///
/// `job` points into the submitting caller's stack frame. The caller
/// blocks in [`Batch::wait`] until `completed == n`, and workers only
/// dereference `job` for claimed indices `i < n` — each of which is
/// counted in `completed` exactly once — so every dereference happens
/// while the caller's frame is alive. After completion workers may still
/// hold the `Arc` and bump `next`, but never dereference `job` again.
struct Batch {
    job: RawJob,
    n: usize,
    /// Next unclaimed item index (may overshoot `n` by one per thread).
    next: AtomicUsize,
    state: Mutex<BatchState>,
    done: Condvar,
}

// SAFETY: the raw job pointer is only dereferenced under the liveness
// protocol documented on `Batch`; all other fields are Send + Sync.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    fn new(job: RawJob, n: usize) -> Self {
        Self {
            job,
            n,
            next: AtomicUsize::new(0),
            state: Mutex::new(BatchState {
                completed: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Whether every item has been claimed (not necessarily completed).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }

    /// Claims and runs items until the claim cursor runs dry. Called by
    /// pool workers and by the submitting caller alike.
    fn run_available(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: i < n, so the caller is still blocked in `wait` and
            // the job pointee is alive (see the struct-level argument).
            let job = unsafe { &*self.job };
            let result = catch_unwind(AssertUnwindSafe(|| job(i)));
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(payload) = result {
                st.panic.get_or_insert(payload);
            }
            st.completed += 1;
            if st.completed == self.n {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every item has completed; re-raises the first worker
    /// panic on the caller.
    fn wait(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.completed < self.n {
            st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = st.panic.take() {
            drop(st);
            resume_unwind(payload);
        }
    }
}

/// The persistent pool: a queue of live batches and the worker wake-up.
struct Pool {
    queue: Mutex<Vec<Arc<Batch>>>,
    work_ready: Condvar,
}

impl Pool {
    /// A worker's main loop: find a batch with unclaimed items, drain it,
    /// repeat; park when no batch has work left.
    fn worker_loop(&self) {
        loop {
            let batch = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    q.retain(|b| !b.exhausted());
                    match q.first() {
                        Some(b) => break Arc::clone(b),
                        None => q = self.work_ready.wait(q).unwrap_or_else(|e| e.into_inner()),
                    }
                }
            };
            batch.run_available();
        }
    }
}

/// The lazy global pool: `current_num_threads() - 1` background workers
/// (the submitting caller is the remaining thread). `None` when the
/// configuration is single-threaded.
fn global_pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let background = current_num_threads().saturating_sub(1);
        if background == 0 {
            return None;
        }
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(Vec::new()),
            work_ready: Condvar::new(),
        }));
        for i in 0..background {
            std::thread::Builder::new()
                .name(format!("locmps-pool-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("worker thread spawns");
        }
        Some(pool)
    })
}

/// Runs `job(0..n)` across the pool (plus the calling thread) and blocks
/// until every index has completed.
fn run_batch(n: usize, job: &(dyn Fn(usize) + Sync)) {
    // SAFETY: erases the borrow lifetime; `Batch::wait` below outlives
    // every dereference (see `Batch`).
    let raw: RawJob = unsafe { std::mem::transmute(job) };
    let batch = Arc::new(Batch::new(raw, n));
    if let Some(pool) = global_pool() {
        pool.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&batch));
        pool.work_ready.notify_all();
    }
    batch.run_available();
    batch.wait();
}

/// `par_iter()` on borrowable collections.
pub trait IntoParallelRefIterator<'a> {
    /// The element type iterated over (a reference).
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator (pre-`map`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// Per-index result slots shared across workers. Each slot is written at
/// most once (by whichever thread claimed that index), so the unsynchronized
/// interior mutability is race-free.
struct Slots<R>(Vec<UnsafeCell<MaybeUninit<R>>>);

// SAFETY: distinct indices are written by distinct claim winners; no slot
// is read until the batch completed on the submitting thread.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on the worker pool and gathers results in input order.
    ///
    /// Inputs of length ≤ 1 and single-thread configurations run inline,
    /// with no pool or synchronization in the path. A panicking `f` is
    /// re-raised on the caller once the batch has drained (the completed
    /// results of such a batch are leaked, not dropped).
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        if n <= 1 || current_num_threads() <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let mut slots = Slots(Vec::with_capacity(n));
        slots
            .0
            .resize_with(n, || UnsafeCell::new(MaybeUninit::uninit()));
        let items = self.items;
        let f = &self.f;
        let slots_ref = &slots;
        run_batch(n, &move |i: usize| {
            let value = f(&items[i]);
            // SAFETY: index i was claimed by exactly one thread.
            unsafe { (*slots_ref.0[i].get()).write(value) };
        });
        // run_batch returned without unwinding, so every slot was written.
        slots
            .0
            .into_iter()
            .map(|cell| unsafe { cell.into_inner().assume_init() })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, parse_threads};

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn pool_survives_repeated_batches() {
        // Many batches through the same persistent pool: results must stay
        // ordered and complete every time.
        for round in 0..50u64 {
            let xs: Vec<u64> = (0..64).collect();
            let out: Vec<u64> = xs.par_iter().map(|x| x + round).collect();
            assert_eq!(out, xs.iter().map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_par_iter_does_not_deadlock() {
        let rows: Vec<u64> = (0..16).collect();
        let sums: Vec<u64> = rows
            .par_iter()
            .map(|&r| {
                let cols: Vec<u64> = (0..32).collect();
                let inner: Vec<u64> = cols.par_iter().map(|c| c * r).collect();
                inner.iter().sum()
            })
            .collect();
        let expected: Vec<u64> = rows.iter().map(|r| r * (0..32u64).sum::<u64>()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        // Batches submitted from several OS threads at once must each get
        // complete, ordered results.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|k| {
                    scope.spawn(move || {
                        let xs: Vec<u64> = (0..512).collect();
                        let out: Vec<u64> = xs.par_iter().map(|x| x * k).collect();
                        assert_eq!(out, xs.iter().map(|x| x * k).collect::<Vec<_>>());
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("submitter thread");
            }
        });
    }

    #[test]
    fn item_panic_propagates_to_the_caller() {
        let xs: Vec<u32> = (0..128).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = xs
                .par_iter()
                .map(|&x| {
                    if x == 77 {
                        panic!("boom at 77");
                    }
                    x
                })
                .collect();
        });
        assert!(result.is_err(), "the item panic must reach the caller");
        // The pool must still be usable afterwards.
        let ok: Vec<u32> = xs.par_iter().map(|x| x + 1).collect();
        assert_eq!(ok.len(), xs.len());
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("nope")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn num_threads_is_positive_and_stable() {
        let n = current_num_threads();
        assert!(n >= 1);
        assert_eq!(n, current_num_threads());
    }
}
