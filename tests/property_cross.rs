//! Workspace-level property tests: the full schedule→validate→replay
//! pipeline on random workloads, across all schedulers.

use locmps::baselines::{Cpa, Cpr, DataParallel, TaskParallel};
use locmps::core::bounds::makespan_lower_bound;
use locmps::prelude::*;
use locmps::sim::{simulate, NoiseModel, SimConfig};
use locmps::speedup::DowneyParams;
use locmps::taskgraph::TaskId;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..14, any::<u64>(), 0.1..0.45f64).prop_map(|(n, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = TaskGraph::new();
        for i in 0..n {
            let work = 2.0 + 30.0 * next();
            let a = 1.0 + 40.0 * next();
            let sigma = 2.5 * next();
            let model = SpeedupModel::Downey(DowneyParams::new(a, sigma).unwrap());
            g.add_task(format!("t{i}"), ExecutionProfile::new(work, model).unwrap());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if next() < density {
                    g.add_edge(TaskId(i as u32), TaskId(j as u32), 200.0 * next())
                        .unwrap();
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_holds_for_every_scheduler(
        g in arb_graph(),
        p in 1usize..9,
        overlap in any::<bool>(),
    ) {
        let cluster = if overlap {
            Cluster::new(p, 25.0)
        } else {
            Cluster::new(p, 25.0).without_overlap()
        };
        let lb = makespan_lower_bound(&g, p);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(LocMps::default()),
            Box::new(LocMps::new(LocMpsConfig::icaslb())),
            Box::new(Cpr),
            Box::new(Cpa),
            Box::new(TaskParallel),
            Box::new(DataParallel),
        ];
        for s in schedulers {
            let out = s.schedule(&g, &cluster).unwrap();
            let rep = simulate(&g, &cluster, &out, SimConfig::default());
            prop_assert!(rep.makespan.is_finite() && rep.makespan > 0.0);
            prop_assert!(rep.makespan + 1e-6 >= lb,
                "{}: executed {} below bound {lb}", s.name(), rep.makespan);
            // The replayed schedule is always valid under the true model.
            let model = locmps::core::CommModel::new(&cluster);
            prop_assert!(rep.executed.validate(&g, &model).is_ok(),
                "{}: {:?}", s.name(), rep.executed.validate(&g, &model));
            prop_assert!(rep.utilization > 0.0 && rep.utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn locmps_dominates_both_pure_paradigms(g in arb_graph(), p in 1usize..9) {
        let cluster = Cluster::new(p, 25.0);
        let exec = |s: &dyn Scheduler| {
            let out = s.schedule(&g, &cluster).unwrap();
            simulate(&g, &cluster, &out, SimConfig::default()).makespan
        };
        let loc = exec(&LocMps::default());
        prop_assert!(loc <= exec(&TaskParallel) * (1.0 + 1e-9));
        prop_assert!(loc <= exec(&DataParallel) * (1.0 + 1e-9));
    }

    #[test]
    fn noisy_replay_is_deterministic_per_seed(g in arb_graph(), p in 1usize..6, seed in any::<u64>()) {
        let cluster = Cluster::new(p, 25.0);
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        let cfg = SimConfig { noise: Some(NoiseModel::mild(seed)), ..Default::default() };
        let a = simulate(&g, &cluster, &out, cfg).makespan;
        let b = simulate(&g, &cluster, &out, cfg).makespan;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn replay_modes_agree_without_data(g in arb_graph(), p in 2usize..8) {
        // With every volume zeroed the locality-aware and locality-blind
        // replays of the same decisions are identical. (With data they may
        // diverge in either direction: shared-endpoint groups make the
        // exact single-port busy time exceed the aggregate estimate, while
        // aligned layouts drop it to zero.)
        let spec = locmps::taskgraph::TaskGraphSpec::from(&g);
        let zeroed = locmps::taskgraph::TaskGraphSpec {
            tasks: spec.tasks,
            edges: spec
                .edges
                .into_iter()
                .map(|mut e| {
                    e.volume = 0.0;
                    e
                })
                .collect(),
        }
        .build()
        .unwrap();
        let cluster = Cluster::new(p, 25.0);
        let out = Cpa.schedule(&zeroed, &cluster).unwrap();
        let aware = simulate(&zeroed, &cluster, &out, SimConfig::default()).makespan;
        let blind = simulate(
            &zeroed,
            &cluster,
            &out,
            SimConfig { locality_aware: false, ..Default::default() },
        )
        .makespan;
        prop_assert!((blind - aware).abs() < 1e-9 * aware.max(1.0));
    }
}
