//! The adaptive path's differential oracle: with **zero noise, no faults
//! and an empty model store**, observation-driven allocation must be a
//! perfect no-op — every offline schedule computed through
//! `PerfModelStore::corrected_graph` and every online execution run under
//! the `Remold` recovery has to reproduce the pinned golden fingerprints
//! of `tests/golden_zoo.rs` **byte-identically** (48 offline cases: 36
//! LoC-MPS variants + 12 direct-LoCBS placements; 12 online traces).
//!
//! This is what licenses shipping the adaptive loop inside the default
//! binaries: when there is nothing to adapt to, it is bitwise invisible.
//! An empty store must clone profiles bit-for-bit (no float churn from a
//! multiply-by-1.0), and an idle `Remold` (no watchdog alarms, no faults)
//! must never perturb engine event ordering.
//!
//! The tables below are verbatim copies of the golden_zoo constants; if a
//! legitimate semantic change regenerates those, regenerate here too
//! (`cargo test --release --test golden_zoo -- --nocapture dump_fingerprints --ignored`).

use locmps::core::{Allocation, CommModel, Locbs, LocbsOptions};
use locmps::prelude::*;
use locmps::runtime::{
    FaultPlan, OnlineConfig, OnlineLocbs, PerfModelStore, Remold, RuntimeEngine,
};
use locmps::workloads::strassen::{strassen_graph, StrassenConfig};
use locmps::workloads::synthetic::{synthetic_graph, SyntheticConfig};
use locmps::workloads::tce::{ccsd_t1_graph, TceConfig};
use locmps::workloads::toys::{chain, fork_join, independent};

fn workloads() -> Vec<(&'static str, TaskGraph)> {
    vec![
        ("chain", chain(6, 10.0, 20.0)),
        ("fork_join", fork_join(5, 8.0, 15.0)),
        ("independent", independent(6, 12.0, 0.2)),
        (
            "synthetic",
            synthetic_graph(&SyntheticConfig {
                n_tasks: 18,
                ccr: 0.5,
                seed: 77,
                ..Default::default()
            }),
        ),
        (
            "strassen",
            strassen_graph(&StrassenConfig {
                n: 512,
                ..Default::default()
            }),
        ),
        (
            "ccsd_t1",
            ccsd_t1_graph(&TceConfig {
                n_occ: 16,
                n_virt: 64,
                ..Default::default()
            }),
        ),
    ]
}

fn fnv(text: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn fingerprint(s: &locmps::core::Schedule) -> u64 {
    fnv(&serde_json::to_string(s).expect("schedules serialize"))
}

fn mixed_alloc(g: &TaskGraph, p: usize) -> Allocation {
    let half = (p / 2).max(1);
    Allocation::from_vec(g.task_ids().map(|t| 1 + (t.index() * 7) % half).collect())
}

fn clusters() -> [(&'static str, Cluster); 2] {
    [
        ("ovl", Cluster::new(7, 50.0)),
        ("noovl", Cluster::new(7, 50.0).without_overlap()),
    ]
}

/// The adaptive offline path: every scheduler input passes through an
/// *empty* store's `corrected_graph` first — exactly what `--adapt` does
/// before any observation has been ingested.
fn adaptive_locmps_cases() -> Vec<(String, u64)> {
    let store = PerfModelStore::new();
    let mut out = Vec::new();
    for (wname, g) in workloads() {
        for (cname, cluster) in clusters() {
            let corrected = store.corrected_graph(&g, cluster.n_procs);
            for sched in [
                LocMps::default(),
                LocMps::new(LocMpsConfig::icaslb()),
                LocMps::new(LocMpsConfig::no_backfill()),
            ] {
                let outp = sched.schedule(&corrected, &cluster).expect("zoo schedules");
                out.push((
                    format!("{wname}/{cname}/{}", sched.name()),
                    fingerprint(&outp.schedule),
                ));
            }
        }
    }
    out
}

fn adaptive_locbs_cases() -> Vec<(String, u64)> {
    let store = PerfModelStore::new();
    let mut out = Vec::new();
    for (wname, g) in workloads() {
        for (cname, cluster) in clusters() {
            let corrected = store.corrected_graph(&g, cluster.n_procs);
            let model = CommModel::new(&cluster);
            let locbs = Locbs::new(model, LocbsOptions::default());
            let res = locbs
                .run(&corrected, &mixed_alloc(&corrected, cluster.n_procs))
                .expect("zoo places");
            out.push((
                format!("{wname}/{cname}/locbs-direct"),
                fingerprint(&res.schedule),
            ));
        }
    }
    out
}

/// The adaptive online path: same engine, same policy, but executing under
/// the `Remold` recovery with no faults, no noise and the default watchdog
/// (off). The recovery must stay dormant and the whole trace — events,
/// schedule, makespan bits — must match the pinned fault-free runs.
fn adaptive_online_cases() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (wname, g) in workloads() {
        for (cname, cluster) in clusters() {
            let mut remold = Remold::locmps();
            let trace = RuntimeEngine::new(&g, &cluster, OnlineConfig::default()).run_with_faults(
                &mut OnlineLocbs::default(),
                &FaultPlan::new(),
                &mut remold,
            );
            assert!(trace.is_complete(), "{wname}/{cname}: fault-free zoo run");
            assert!(
                remold.store().is_empty(),
                "{wname}/{cname}: an idle remold must not have learned anything"
            );
            let text = serde_json::to_string(&trace).expect("traces serialize");
            out.push((format!("{wname}/{cname}/online-locbs"), fnv(&text)));
        }
    }
    out
}

// Verbatim copies of the golden_zoo tables (36 + 12 offline, 12 online).
const LOCMPS_GOLDEN: &[(&str, u64)] = &[
    ("chain/ovl/LoC-MPS", 0x51b023f5229c1847),
    ("chain/ovl/iCASLB", 0x51b023f5229c1847),
    ("chain/ovl/LoC-MPS/no-backfill", 0x51b023f5229c1847),
    ("chain/noovl/LoC-MPS", 0x51b023f5229c1847),
    ("chain/noovl/iCASLB", 0x51b023f5229c1847),
    ("chain/noovl/LoC-MPS/no-backfill", 0x51b023f5229c1847),
    ("fork_join/ovl/LoC-MPS", 0xcad58329ff4f976a),
    ("fork_join/ovl/iCASLB", 0xcad58329ff4f976a),
    ("fork_join/ovl/LoC-MPS/no-backfill", 0xcad58329ff4f976a),
    ("fork_join/noovl/LoC-MPS", 0xcad58329ff4f976a),
    ("fork_join/noovl/iCASLB", 0xcad58329ff4f976a),
    ("fork_join/noovl/LoC-MPS/no-backfill", 0xcad58329ff4f976a),
    ("independent/ovl/LoC-MPS", 0x9e268f4e2b7a1e2d),
    ("independent/ovl/iCASLB", 0x9e268f4e2b7a1e2d),
    ("independent/ovl/LoC-MPS/no-backfill", 0x9e268f4e2b7a1e2d),
    ("independent/noovl/LoC-MPS", 0x9e268f4e2b7a1e2d),
    ("independent/noovl/iCASLB", 0x9e268f4e2b7a1e2d),
    ("independent/noovl/LoC-MPS/no-backfill", 0x9e268f4e2b7a1e2d),
    ("synthetic/ovl/LoC-MPS", 0x22479f276656b763),
    ("synthetic/ovl/iCASLB", 0x9001c635e80db80a),
    ("synthetic/ovl/LoC-MPS/no-backfill", 0x22479f276656b763),
    ("synthetic/noovl/LoC-MPS", 0x22479f276656b763),
    ("synthetic/noovl/iCASLB", 0x9001c635e80db80a),
    ("synthetic/noovl/LoC-MPS/no-backfill", 0x22479f276656b763),
    ("strassen/ovl/LoC-MPS", 0x5f633311a6ba48c7),
    ("strassen/ovl/iCASLB", 0xbfb85327f1fe267b),
    ("strassen/ovl/LoC-MPS/no-backfill", 0x5f633311a6ba48c7),
    ("strassen/noovl/LoC-MPS", 0x5f633311a6ba48c7),
    ("strassen/noovl/iCASLB", 0xbfb85327f1fe267b),
    ("strassen/noovl/LoC-MPS/no-backfill", 0x5f633311a6ba48c7),
    ("ccsd_t1/ovl/LoC-MPS", 0xfa7989cfa100eb68),
    ("ccsd_t1/ovl/iCASLB", 0x64efa7fc02c38a58),
    ("ccsd_t1/ovl/LoC-MPS/no-backfill", 0x201a9b306083fbc2),
    ("ccsd_t1/noovl/LoC-MPS", 0x12a4482b6f9fe7dc),
    ("ccsd_t1/noovl/iCASLB", 0x64efa7fc02c38a58),
    ("ccsd_t1/noovl/LoC-MPS/no-backfill", 0x7699ebfaac22fa29),
];
const LOCBS_GOLDEN: &[(&str, u64)] = &[
    ("chain/ovl/locbs-direct", 0xd3076428d01f69ef),
    ("chain/noovl/locbs-direct", 0x9e47840b54671825),
    ("fork_join/ovl/locbs-direct", 0xf1cb617eb7c3088d),
    ("fork_join/noovl/locbs-direct", 0xaf6bbb7952b0ba64),
    ("independent/ovl/locbs-direct", 0x9588bddb0d89f255),
    ("independent/noovl/locbs-direct", 0x9588bddb0d89f255),
    ("synthetic/ovl/locbs-direct", 0xe96b39a1b4874a63),
    ("synthetic/noovl/locbs-direct", 0x1bf08da4a0f6065c),
    ("strassen/ovl/locbs-direct", 0x7e027bda24fea542),
    ("strassen/noovl/locbs-direct", 0xb4dd641179a8d888),
    ("ccsd_t1/ovl/locbs-direct", 0xede3d0914594410a),
    ("ccsd_t1/noovl/locbs-direct", 0x783909ac63a4a579),
];
const ONLINE_GOLDEN: &[(&str, u64)] = &[
    ("chain/ovl/online-locbs", 0x2f27a9a230875a07),
    ("chain/noovl/online-locbs", 0x2f27a9a230875a07),
    ("fork_join/ovl/online-locbs", 0xa07ab444da17e82c),
    ("fork_join/noovl/online-locbs", 0xbc8a92bc7a1dd01d),
    ("independent/ovl/online-locbs", 0x88777aa2c347230f),
    ("independent/noovl/online-locbs", 0x88777aa2c347230f),
    ("synthetic/ovl/online-locbs", 0x2050c643bb33c7ca),
    ("synthetic/noovl/online-locbs", 0x012bd9e409ae32ab),
    ("strassen/ovl/online-locbs", 0xc3692116786fa996),
    ("strassen/noovl/online-locbs", 0xeed236db07ee3ba4),
    ("ccsd_t1/ovl/online-locbs", 0x99c14045cdd17f7b),
    ("ccsd_t1/noovl/online-locbs", 0x78983ddd702114c7),
];

fn check(actual: Vec<(String, u64)>, golden: &[(&str, u64)]) {
    assert_eq!(
        actual.len(),
        golden.len(),
        "case count drifted — regenerate the table"
    );
    for ((name, fp), (gname, gfp)) in actual.iter().zip(golden) {
        assert_eq!(name, gname, "case order drifted — regenerate the table");
        assert_eq!(
            *fp, *gfp,
            "{name}: adaptive path drifted from the golden fingerprint"
        );
    }
}

#[test]
fn empty_store_locmps_schedules_match_golden_fingerprints() {
    check(adaptive_locmps_cases(), LOCMPS_GOLDEN);
}

#[test]
fn empty_store_locbs_placements_match_golden_fingerprints() {
    check(adaptive_locbs_cases(), LOCBS_GOLDEN);
}

#[test]
fn dormant_remold_traces_match_golden_fingerprints() {
    check(adaptive_online_cases(), ONLINE_GOLDEN);
}

/// The no-op guarantee breaks the moment the store is *not* empty: one
/// observation on one task must change that task's corrected profile and
/// leave every other profile bit-identical — corrections are surgical.
#[test]
fn a_single_observation_only_touches_its_task() {
    let g = chain(6, 10.0, 20.0);
    let mut store = PerfModelStore::new();
    let name = g.tasks().next().map(|(_, t)| t.name.clone()).unwrap();
    store.observe(&name, 1, 10.0, 30.0).unwrap();
    let corrected = store.corrected_graph(&g, 7);
    for (t, task) in g.tasks() {
        let same = format!("{:?}", task.profile) == format!("{:?}", corrected.task(t).profile);
        if task.name == name {
            assert!(!same, "observed task must be corrected");
        } else {
            assert!(same, "unobserved task {:?} must be untouched", task.name);
        }
    }
}
