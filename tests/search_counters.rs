//! Search-efficiency pinning: the deterministic [`SearchCounters`] of a
//! fixed LoC-MPS case are pure functions of the input, so CI can assert
//! exact values — a regression in the admissible pruning, the pass memo or
//! the bounded-horizon probes shows up as a counter drift long before it
//! is measurable as flaky wall-clock.
//!
//! The pinned (200 tasks, 32 procs) case is `#[ignore]`d from the default
//! suite (it runs a full refinement search) and executed by the CI
//! perf-smoke job via
//! `cargo test --release --test search_counters -- --ignored`.

use locmps::core::bounds::{allocation_lower_bound, WideningBounds};
use locmps::core::{Allocation, CommModel, Locbs, LocbsOptions, SearchCounters};
use locmps::prelude::*;
use locmps::workloads::strassen::{strassen_graph, StrassenConfig};
use locmps::workloads::synthetic::{synthetic_graph, SyntheticConfig};
use locmps::workloads::tce::{ccsd_t1_graph, TceConfig};
use locmps::workloads::toys::{chain, fork_join, independent};

fn zoo() -> Vec<(&'static str, TaskGraph)> {
    vec![
        ("chain", chain(6, 10.0, 20.0)),
        ("fork_join", fork_join(5, 8.0, 15.0)),
        ("independent", independent(6, 12.0, 0.2)),
        (
            "synthetic",
            synthetic_graph(&SyntheticConfig {
                n_tasks: 18,
                ccr: 0.5,
                seed: 77,
                ..Default::default()
            }),
        ),
        (
            "strassen",
            strassen_graph(&StrassenConfig {
                n: 512,
                ..Default::default()
            }),
        ),
        (
            "ccsd_t1",
            ccsd_t1_graph(&TceConfig {
                n_occ: 16,
                n_virt: 64,
                ..Default::default()
            }),
        ),
    ]
}

/// The same deterministic mixed-width allocation the golden zoo pins.
fn mixed_alloc(g: &TaskGraph, p: usize) -> Allocation {
    let half = (p / 2).max(1);
    Allocation::from_vec(g.task_ids().map(|t| 1 + (t.index() * 7) % half).collect())
}

/// Both admissible bounds hold on every golden-zoo workload: never above
/// the true LoCBS makespan of the allocation (or of the allocation itself,
/// for the zero-step window).
#[test]
fn bounds_are_admissible_on_golden_zoo() {
    for (name, g) in zoo() {
        for p in [3usize, 7, 16] {
            let cluster = Cluster::new(p, 50.0);
            let model = CommModel::new(&cluster);
            let locbs = Locbs::new(model, LocbsOptions::default());
            let alloc = mixed_alloc(&g, p);
            let makespan = locbs.run(&g, &alloc).expect("zoo places").makespan;

            let lb = allocation_lower_bound(&g, &alloc, p);
            assert!(
                lb <= makespan * (1.0 + 1e-9),
                "{name}/P={p}: allocation bound {lb} above makespan {makespan}"
            );

            let wb = WideningBounds::new(&g, p);
            let mut prev = f64::INFINITY;
            for steps in [0usize, 1, 2, 5, p] {
                let b = wb.cone_bound_within(&g, &alloc, steps);
                assert!(
                    b <= makespan * (1.0 + 1e-9),
                    "{name}/P={p}/steps={steps}: window bound {b} above makespan {makespan}"
                );
                // Windows only loosen as the remaining depth grows.
                assert!(
                    b <= prev * (1.0 + 1e-12),
                    "{name}/P={p}/steps={steps}: window bound not monotone ({b} > {prev})"
                );
                prev = b;
            }
            // ...down to the full cone in the limit.
            let cone = wb.cone_bound(&g, &alloc);
            assert!(cone <= wb.cone_bound_within(&g, &alloc, p) * (1.0 + 1e-12));
        }
    }
}

/// The zero-step window is exactly the single-allocation bound.
#[test]
fn zero_step_window_equals_allocation_bound() {
    for (name, g) in zoo() {
        let p = 7;
        let alloc = mixed_alloc(&g, p);
        let wb = WideningBounds::new(&g, p);
        let a = wb.cone_bound_within(&g, &alloc, 0);
        let b = allocation_lower_bound(&g, &alloc, p);
        assert!(
            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
            "{name}: zero-step window {a} != allocation bound {b}"
        );
    }
}

/// CI perf-smoke: the pinned (200 tasks, 32 procs) search-effort budget.
///
/// Every value below is a pure function of the input, so exact equality is
/// safe to assert. `locbs_passes` is pinned as a ≤ budget (any improvement
/// to the memo/pruning only lowers it; a regression that re-runs memoized
/// or aborted work raises it past the budget and fails), the remaining
/// counters exactly.
#[test]
#[ignore = "perf-smoke: full refinement search; run in release via CI's perf-smoke job"]
fn pinned_200x32_search_effort() {
    let g = synthetic_graph(&SyntheticConfig {
        n_tasks: 200,
        ccr: 0.5,
        seed: 42,
        ..Default::default()
    });
    let cluster = Cluster::fast_ethernet(32);
    let out = LocMps::default().schedule(&g, &cluster).expect("schedules");
    let c = out.counters;

    // Budget: executed full passes may only go down. Measured 34_222 when
    // this pin was taken; the slack absorbs nothing — any counter change
    // already fails the exact pins below, the budget exists to phrase the
    // *direction* a pass-count regression takes.
    const PASS_BUDGET: u64 = 34_222;
    assert!(
        c.locbs_passes <= PASS_BUDGET,
        "executed {} full LoCBS passes, budget is {PASS_BUDGET} — \
         a memo/pruning/bounded-probe regression re-runs avoided work",
        c.locbs_passes
    );

    // Exact pins: deterministic counters of this exact input.
    let expected = SearchCounters {
        locbs_passes: c.locbs_passes, // budgeted above, not pinned
        pass_memo_hits: 3_976,
        probes_aborted: 2_007,
        branches_pruned: 2,
        lookahead_cutoffs: 0,
        pool_tasks: 0,
        commits: 83,
    };
    assert_eq!(c, expected, "search-effort counters drifted");
}
