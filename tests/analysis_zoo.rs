//! Diagnostics over the workload zoo: every scheduler in the paper's
//! comparison set must produce analyzer-clean schedules (zero `LMxxx`
//! *Error* diagnostics) on every zoo workload, and the schedule analyzer
//! must agree with [`Schedule::validate`] — analyzer-clean if and only if
//! validation passes.

use locmps::analysis::{analyze_schedule, codes, lint_input, Severity};
use locmps::baselines::{Cpa, Cpr, DataParallel, TaskParallel};
use locmps::core::CommModel;
use locmps::prelude::*;
use locmps::sim::{simulate, SimConfig};
use locmps::workloads::strassen::{strassen_graph, StrassenConfig};
use locmps::workloads::synthetic::{synthetic_graph, SyntheticConfig};
use locmps::workloads::tce::{ccsd_t1_graph, TceConfig};
use locmps::workloads::toys::{chain, fork_join, independent};

fn workloads() -> Vec<(&'static str, TaskGraph)> {
    vec![
        ("chain", chain(6, 10.0, 20.0)),
        ("fork_join", fork_join(5, 8.0, 15.0)),
        ("independent", independent(6, 12.0, 0.2)),
        (
            "synthetic",
            synthetic_graph(&SyntheticConfig {
                n_tasks: 18,
                ccr: 0.5,
                seed: 77,
                ..Default::default()
            }),
        ),
        (
            "strassen",
            strassen_graph(&StrassenConfig {
                n: 512,
                ..Default::default()
            }),
        ),
        (
            "ccsd_t1",
            ccsd_t1_graph(&TceConfig {
                n_occ: 16,
                n_virt: 64,
                ..Default::default()
            }),
        ),
    ]
}

/// The paper's six-way comparison set, with whether each scheduler's
/// runtime pays exact (locality-aware) or aggregate (blind) transfer costs.
/// CPR/CPA plan with aggregate redistribution estimates, so their executed
/// timestamps are only meaningful under the communication-blind model.
fn schedulers() -> Vec<(Box<dyn Scheduler>, bool)> {
    vec![
        (Box::new(LocMps::default()), true),
        (Box::new(LocMps::new(LocMpsConfig::icaslb())), true),
        (Box::new(Cpr), false),
        (Box::new(Cpa), false),
        (Box::new(TaskParallel), true),
        (Box::new(DataParallel), true),
    ]
}

#[test]
fn zoo_inputs_are_lint_clean() {
    for (name, g) in workloads() {
        let cluster = Cluster::new(8, 100.0);
        let report = lint_input(&g, &cluster);
        assert_eq!(
            report.count(Severity::Error),
            0,
            "{name}: input lint errors:\n{}",
            report.render_text()
        );
        assert_eq!(
            report.count(Severity::Warn),
            0,
            "{name}: input lint warnings:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn zoo_schedules_are_analyzer_clean_for_all_schedulers() {
    for (wname, g) in workloads() {
        for overlap in [true, false] {
            let cluster = if overlap {
                Cluster::new(8, 100.0)
            } else {
                Cluster::new(8, 100.0).without_overlap()
            };
            for (s, aware) in schedulers() {
                let out = s.schedule(&g, &cluster).unwrap();
                let rep = simulate(
                    &g,
                    &cluster,
                    &out,
                    SimConfig {
                        locality_aware: aware,
                        ..Default::default()
                    },
                );
                let model = if aware {
                    CommModel::new(&cluster)
                } else {
                    CommModel::blind(&cluster)
                };
                let diag = analyze_schedule(&rep.executed, &g, &model);
                assert_eq!(
                    diag.count(Severity::Error),
                    0,
                    "{wname}/{} (overlap={overlap}): analyzer errors:\n{}",
                    s.name(),
                    diag.render_text()
                );
                // Metrics are always emitted for a fully usable schedule.
                assert!(diag.has_code(codes::UTILIZATION), "{wname}/{}", s.name());
                assert!(diag.has_code(codes::IDLE_GAPS), "{wname}/{}", s.name());
            }
        }
    }
}

#[test]
fn analyzer_agrees_with_validate_on_the_zoo() {
    for (wname, g) in workloads() {
        let cluster = Cluster::new(8, 100.0);
        for (s, aware) in schedulers() {
            let out = s.schedule(&g, &cluster).unwrap();
            let rep = simulate(
                &g,
                &cluster,
                &out,
                SimConfig {
                    locality_aware: aware,
                    ..Default::default()
                },
            );
            let model = if aware {
                CommModel::new(&cluster)
            } else {
                CommModel::blind(&cluster)
            };
            let diag = analyze_schedule(&rep.executed, &g, &model);
            let analyzer_clean = diag.count(Severity::Error) == 0;
            let validate_ok = rep.executed.validate(&g, &model).is_ok();
            assert_eq!(
                analyzer_clean,
                validate_ok,
                "{wname}/{}: analyzer said clean={analyzer_clean} but validate said ok={validate_ok}:\n{}\n{:?}",
                s.name(),
                diag.render_text(),
                rep.executed.validate(&g, &model)
            );
        }
    }
}

#[test]
fn locality_stats_reported_on_communication_heavy_workloads() {
    let g = synthetic_graph(&SyntheticConfig {
        n_tasks: 18,
        ccr: 2.0,
        seed: 42,
        ..Default::default()
    });
    let cluster = Cluster::new(8, 100.0);
    let out = LocMps::default().schedule(&g, &cluster).unwrap();
    let rep = simulate(&g, &cluster, &out, SimConfig::default());
    let model = CommModel::new(&cluster);
    let diag = analyze_schedule(&rep.executed, &g, &model);
    let loc: Vec<_> = diag.by_code(codes::LOCALITY).collect();
    assert_eq!(loc.len(), 1, "{}", diag.render_text());
    assert_eq!(loc[0].severity, Severity::Info);
}
