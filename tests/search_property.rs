//! Pruning-exactness properties: the bound-driven accelerations of the
//! LoC-MPS refinement search (admissible branch pruning, bounded-horizon
//! probes, the allocation-keyed pass memo) must be **lossless** — the
//! search with them on selects the same commits and produces the
//! byte-identical schedule, allocation and schedule-DAG as the exhaustive
//! reference that runs every LoCBS pass to completion — and the bounds
//! they rely on must be admissible (never above a true LoCBS makespan).

use locmps::core::bounds::{allocation_lower_bound, WideningBounds};
use locmps::core::{Allocation, CommModel, Locbs, LocbsOptions};
use locmps::prelude::*;
use locmps::speedup::DowneyParams;
use locmps::taskgraph::TaskId;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..14, any::<u64>(), 0.1..0.45f64).prop_map(|(n, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = TaskGraph::new();
        for i in 0..n {
            let work = 2.0 + 30.0 * next();
            let a = 1.0 + 40.0 * next();
            let sigma = 2.5 * next();
            let model = SpeedupModel::Downey(DowneyParams::new(a, sigma).unwrap());
            g.add_task(format!("t{i}"), ExecutionProfile::new(work, model).unwrap());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if next() < density {
                    g.add_edge(TaskId(i as u32), TaskId(j as u32), 200.0 * next())
                        .unwrap();
                }
            }
        }
        g
    })
}

/// Full-precision serialization: byte equality pins exact f64 bits.
fn serialized(s: &Schedule) -> String {
    serde_json::to_string(s).expect("schedules serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: pruned and exhaustive searches are
    /// indistinguishable in everything but effort. Identical commit counts
    /// mean the two walked the same commit/mark trajectory (the same entry
    /// was selected in every improving round); identical serialized
    /// schedules and allocations mean not one placement bit drifted.
    #[test]
    fn pruned_search_matches_exhaustive_reference(
        g in arb_graph(),
        p in 1usize..9,
        overlap in any::<bool>(),
    ) {
        let cluster = if overlap {
            Cluster::new(p, 25.0)
        } else {
            Cluster::new(p, 25.0).without_overlap()
        };
        let pruned = LocMps::default().schedule(&g, &cluster).unwrap();
        let reference = LocMps::new(LocMpsConfig::exhaustive())
            .schedule(&g, &cluster)
            .unwrap();

        prop_assert_eq!(serialized(&pruned.schedule), serialized(&reference.schedule));
        prop_assert_eq!(
            pruned.allocation.as_slice(),
            reference.allocation.as_slice()
        );
        prop_assert_eq!(pruned.counters.commits, reference.counters.commits);
        // The reference by construction does none of the accelerated work.
        prop_assert_eq!(reference.counters.pass_memo_hits, 0);
        prop_assert_eq!(reference.counters.probes_aborted, 0);
        prop_assert_eq!(reference.counters.branches_pruned, 0);
        prop_assert_eq!(reference.counters.lookahead_cutoffs, 0);
        // And never executes fewer passes than the pruned search.
        prop_assert!(reference.counters.locbs_passes >= pruned.counters.locbs_passes);
    }

    /// Each acceleration is lossless on its own, not just in concert.
    #[test]
    fn each_acceleration_is_individually_lossless(
        g in arb_graph(),
        p in 1usize..7,
    ) {
        let cluster = Cluster::new(p, 25.0);
        let reference = LocMps::new(LocMpsConfig::exhaustive())
            .schedule(&g, &cluster)
            .unwrap();
        for config in [
            LocMpsConfig { prune: true, bounded_probes: false, ..LocMpsConfig::default() },
            LocMpsConfig { prune: false, bounded_probes: true, ..LocMpsConfig::default() },
        ] {
            let out = LocMps::new(config).schedule(&g, &cluster).unwrap();
            prop_assert_eq!(serialized(&out.schedule), serialized(&reference.schedule));
            prop_assert_eq!(out.allocation.as_slice(), reference.allocation.as_slice());
        }
    }

    /// The counters are pure functions of the input: two runs of the same
    /// configuration agree exactly.
    #[test]
    fn counters_are_deterministic(g in arb_graph(), p in 1usize..7) {
        let cluster = Cluster::new(p, 25.0);
        let a = LocMps::default().schedule(&g, &cluster).unwrap();
        let b = LocMps::default().schedule(&g, &cluster).unwrap();
        prop_assert_eq!(a.counters, b.counters);
    }

    /// Admissibility of the allocation-level bound: never above the true
    /// LoCBS makespan of that allocation.
    #[test]
    fn allocation_bound_is_admissible(
        g in arb_graph(),
        p in 1usize..9,
        widths in proptest::collection::vec(1usize..9, 14..15),
    ) {
        let cluster = Cluster::new(p, 25.0);
        let alloc = Allocation::from_vec(
            g.task_ids().map(|t| widths[t.index()].min(p)).collect(),
        );
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        let res = locbs.run(&g, &alloc).unwrap();
        let bound = allocation_lower_bound(&g, &alloc, p);
        prop_assert!(
            bound <= res.makespan * (1.0 + 1e-9),
            "bound {bound} above true makespan {}", res.makespan
        );
    }

    /// Admissibility of the depth-capped widening-window bound: never above
    /// the true LoCBS makespan of ANY allocation reachable by at most
    /// `steps` single-task widening moves.
    #[test]
    fn window_bound_is_admissible_over_reachable_allocations(
        g in arb_graph(),
        p in 2usize..9,
        widths in proptest::collection::vec(1usize..9, 14..15),
        steps in 0usize..6,
        moves in proptest::collection::vec((0usize..14, 1usize..9), 6..7),
    ) {
        let cluster = Cluster::new(p, 25.0);
        let alloc = Allocation::from_vec(
            g.task_ids().map(|t| widths[t.index()].min(p)).collect(),
        );
        let wb = WideningBounds::new(&g, p);
        let bound = wb.cone_bound_within(&g, &alloc, steps);
        // The full cone is the infinite-window limit; windows only tighten.
        prop_assert!(wb.cone_bound(&g, &alloc) <= bound * (1.0 + 1e-12));

        // Apply at most `steps` widening moves and compare against the
        // true makespan of the reached allocation.
        let mut widened = alloc.clone();
        for &(idx, _) in moves.iter().take(steps) {
            let t = TaskId((idx % g.n_tasks()) as u32);
            widened.set(t, (widened.np(t) + 1).min(p));
        }
        let model = CommModel::new(&cluster);
        let locbs = Locbs::new(model, LocbsOptions::default());
        let res = locbs.run(&g, &widened).unwrap();
        prop_assert!(
            bound <= res.makespan * (1.0 + 1e-9),
            "window bound {bound} above reachable makespan {}", res.makespan
        );
    }
}
