//! Differential replay oracle: with **zero noise and an empty fault
//! plan**, the online runtime executing a LoC-MPS plan through
//! `PlanFollower` must reproduce the `locmps-sim` replay of that same
//! plan — per task, not just in aggregate.
//!
//! The two implementations are independent: the simulator walks tasks in
//! planned start order against per-processor queues; the engine is an
//! event-driven loop dispatching whenever a planned processor set frees
//! up. Both apply the identical communication model, so every task's
//! compute start and finish must agree to within a tolerance bounded by
//! the schedule length (f64 accumulation differs, semantics must not).
//! A drift in either implementation shows up here as a per-task diff.

use locmps::prelude::*;
use locmps::runtime::{OnlineConfig, PlanFollower, RuntimeEngine};
use locmps::sim::{simulate, SimConfig};
use locmps::workloads::strassen::{strassen_graph, StrassenConfig};
use locmps::workloads::synthetic::{synthetic_graph, SyntheticConfig};
use locmps::workloads::tce::{ccsd_t1_graph, TceConfig};
use locmps::workloads::toys::{chain, fork_join, independent};

/// The golden-zoo workload set (kept in sync with `tests/golden_zoo.rs`).
fn workloads() -> Vec<(&'static str, TaskGraph)> {
    vec![
        ("chain", chain(6, 10.0, 20.0)),
        ("fork_join", fork_join(5, 8.0, 15.0)),
        ("independent", independent(6, 12.0, 0.2)),
        (
            "synthetic",
            synthetic_graph(&SyntheticConfig {
                n_tasks: 18,
                ccr: 0.5,
                seed: 77,
                ..Default::default()
            }),
        ),
        (
            "strassen",
            strassen_graph(&StrassenConfig {
                n: 512,
                ..Default::default()
            }),
        ),
        (
            "ccsd_t1",
            ccsd_t1_graph(&TceConfig {
                n_occ: 16,
                n_virt: 64,
                ..Default::default()
            }),
        ),
    ]
}

#[test]
fn plan_follower_replays_the_simulator_task_for_task() {
    for (wname, g) in workloads() {
        for (cname, cluster) in [
            ("ovl", Cluster::new(7, 50.0)),
            ("noovl", Cluster::new(7, 50.0).without_overlap()),
        ] {
            let out = LocMps::default()
                .schedule(&g, &cluster)
                .expect("zoo schedules");
            let rep = simulate(&g, &cluster, &out, SimConfig::default());

            let trace = RuntimeEngine::new(&g, &cluster, OnlineConfig::default())
                .run(&mut PlanFollower::locmps());
            assert!(
                trace.is_complete() && !trace.aborted,
                "{wname}/{cname}: fault-free run must complete"
            );

            // Tolerance bounded by the schedule length: the two
            // implementations accumulate the same sums in different
            // orders, nothing more.
            let eps = 1e-9 * rep.makespan.abs().max(1.0);
            assert!(
                (trace.makespan - rep.makespan).abs() <= eps,
                "{wname}/{cname}: makespan diverged — engine {} vs sim {}",
                trace.makespan,
                rep.makespan
            );
            for t in g.task_ids() {
                let sim_t = rep.executed.get(t).expect("sim covers all tasks");
                let eng_t = trace.schedule.get(t).expect("engine covers all tasks");
                assert_eq!(
                    sim_t.procs, eng_t.procs,
                    "{wname}/{cname}/{t}: placement diverged"
                );
                assert!(
                    (sim_t.compute_start - eng_t.compute_start).abs() <= eps,
                    "{wname}/{cname}/{t}: compute start diverged — engine {} vs sim {}",
                    eng_t.compute_start,
                    sim_t.compute_start
                );
                assert!(
                    (sim_t.finish - eng_t.finish).abs() <= eps,
                    "{wname}/{cname}/{t}: finish diverged — engine {} vs sim {}",
                    eng_t.finish,
                    sim_t.finish
                );
            }
        }
    }
}

#[test]
fn noisy_replay_still_matches_when_keyed_identically() {
    // The same per-task noise keying is used by both implementations, so
    // the oracle extends to noisy runs: seed the engine and the simulator
    // identically and per-task times must still agree.
    let g = synthetic_graph(&SyntheticConfig {
        n_tasks: 18,
        ccr: 0.5,
        seed: 77,
        ..Default::default()
    });
    let cluster = Cluster::new(7, 50.0);
    let out = LocMps::default()
        .schedule(&g, &cluster)
        .expect("zoo schedules");
    for seed in [1u64, 42, 1234] {
        let noise = locmps::sim::NoiseModel {
            seed,
            exec_cv: 0.25,
            bw_jitter: 0.0,
        };
        let rep = simulate(
            &g,
            &cluster,
            &out,
            SimConfig {
                noise: Some(noise),
                ..Default::default()
            },
        );
        let trace = RuntimeEngine::new(
            &g,
            &cluster,
            OnlineConfig {
                seed,
                exec_cv: 0.25,
                ..OnlineConfig::default()
            },
        )
        .run(&mut PlanFollower::locmps());
        let eps = 1e-9 * rep.makespan.abs().max(1.0);
        for t in g.task_ids() {
            let sim_t = rep.executed.get(t).expect("sim covers all tasks");
            let eng_t = trace.schedule.get(t).expect("engine covers all tasks");
            assert!(
                (sim_t.finish - eng_t.finish).abs() <= eps,
                "seed {seed}/{t}: finish diverged — engine {} vs sim {}",
                eng_t.finish,
                sim_t.finish
            );
        }
    }
}
