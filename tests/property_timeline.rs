//! Property tests pinning the incrementally maintained timeline (sorted
//! event list + scratch free-set buffers) to a straight re-implementation
//! of the seed algorithm: per-query gather-and-sort of candidate ends and
//! freshly allocated free sets.
//!
//! Time scales are kept where the length-bounded booking tolerance equals
//! the seed's purely relative one (durations ≥ 1, times ≪ 1e6), so the two
//! implementations must agree *exactly* on every query after every random
//! gated occupy sequence.

use locmps::core::schedule::time_eps;
use locmps::core::timeline::Timeline;
use locmps::platform::{ProcId, ProcSet};
use proptest::prelude::*;

/// The seed implementation, verbatim: one vector of busy intervals per
/// processor, candidates re-gathered and sorted per query.
struct RefTimeline {
    busy: Vec<Vec<(f64, f64)>>,
}

impl RefTimeline {
    fn new(n_procs: usize) -> Self {
        Self {
            busy: vec![Vec::new(); n_procs],
        }
    }

    fn is_free(&self, p: ProcId, start: f64, finish: f64) -> bool {
        let eps = time_eps(finish);
        let intervals = &self.busy[p as usize];
        let idx = intervals.partition_point(|iv| iv.1 <= start + eps);
        match intervals.get(idx) {
            Some(&(s, _)) => s + eps >= finish,
            None => true,
        }
    }

    fn occupy(&mut self, procs: &ProcSet, start: f64, finish: f64) {
        for p in procs.iter() {
            let intervals = &mut self.busy[p as usize];
            let idx = intervals.partition_point(|iv| iv.0 < start);
            intervals.insert(idx, (start, finish));
        }
    }

    fn free_set(&self, start: f64, finish: f64) -> Vec<ProcId> {
        (0..self.busy.len() as ProcId)
            .filter(|&p| self.is_free(p, start, finish))
            .collect()
    }

    fn last_free_time(&self, p: ProcId) -> f64 {
        self.busy[p as usize].last().map_or(0.0, |iv| iv.1)
    }

    fn candidate_times(&self, after: f64) -> Vec<f64> {
        let mut times = vec![after];
        for intervals in &self.busy {
            for &(_, end) in intervals {
                if end > after {
                    times.push(end);
                }
            }
        }
        times.sort_by(f64::total_cmp);
        times.dedup_by(|a, b| (*a - *b).abs() <= time_eps(*a));
        times
    }
}

fn proc_subset(mask: u64, n_procs: usize) -> ProcSet {
    let mut s = ProcSet::new();
    for p in 0..n_procs {
        if mask & (1 << p) != 0 {
            s.insert(p as ProcId);
        }
    }
    if s.is_empty() {
        s.insert((mask % n_procs as u64) as ProcId);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn event_list_timeline_matches_seed_reference(
        n_procs in 2usize..10,
        ops in proptest::collection::vec(
            (any::<u64>(), 0.0..500.0f64, 1.0..50.0f64),
            1..40,
        ),
    ) {
        let mut tl = Timeline::new(n_procs);
        let mut reference = RefTimeline::new(n_procs);
        let mut scratch = ProcSet::new();

        for (mask, start, dur) in ops {
            let procs = proc_subset(mask, n_procs);
            let finish = start + dur;

            // The implementations must agree on freeness before booking...
            for p in procs.iter() {
                prop_assert_eq!(
                    tl.is_free(p, start, finish),
                    reference.is_free(p, start, finish),
                    "is_free(p{}, {}, {})", p, start, finish
                );
            }
            // ...and only conflict-free bookings are applied (occupy panics
            // on overlap by design).
            if procs.iter().all(|p| tl.is_free(p, start, finish)) {
                tl.occupy(&procs, start, finish);
                reference.occupy(&procs, start, finish);
            }

            // Candidate enumeration: full, from a booking end, and cut off
            // at a horizon, against the gather-and-sort reference.
            for after in [0.0, start, finish, 250.0] {
                let expect = reference.candidate_times(after);
                prop_assert_eq!(&tl.candidate_times(after), &expect);
                for horizon in [after, 100.0, f64::INFINITY] {
                    let cut: Vec<f64> =
                        expect.iter().copied().filter(|&c| c < horizon).collect();
                    prop_assert_eq!(&tl.candidate_times_below(after, horizon), &cut);
                }
            }

            // Free sets through the reused scratch buffer.
            for (ws, wf) in [(start, finish), (0.0, 600.0), (finish, finish + 10.0)] {
                tl.free_set_into(ws, wf, &mut scratch);
                prop_assert_eq!(&scratch.to_vec(), &reference.free_set(ws, wf));
                prop_assert_eq!(&tl.free_set(ws, wf), &scratch);
            }
            for p in 0..n_procs as ProcId {
                prop_assert_eq!(tl.last_free_time(p), reference.last_free_time(p));
            }
        }
    }
}
