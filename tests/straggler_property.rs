//! Property tests for the straggler-mitigation machinery: watchdog
//! deadlines, speculative duplicates and the chaos shrinker.
//!
//! The invariants:
//! * with the watchdog disarmed and no faults, the engine is **byte-for-
//!   byte** the pre-straggler engine — the 12 `ONLINE_GOLDEN` trace
//!   fingerprints reproduce even with every other straggler knob set to a
//!   non-default value;
//! * a hedged run never holds more than `max_speculative` duplicates in
//!   flight, and every `SpeculativeLaunch` is closed by exactly one of
//!   `TaskFinish`, `AttemptKilled` or `TaskCrash` naming its attempt;
//! * a minimized chaos reproducer still reproduces the failure key of
//!   the original campaign it was shrunk from.

use locmps::analysis::analyze_trace;
use locmps::prelude::*;
use locmps::runtime::chaos::{run_chaos, ChaosConfig};
use locmps::runtime::{
    recovery_by_name, Fault, FaultPlan, OnlineConfig, OnlineLocbs, PlanFollower, RuntimeEngine,
    TraceEventKind,
};
use locmps::speedup::DowneyParams;
use locmps::taskgraph::TaskId;
use locmps::workloads::strassen::{strassen_graph, StrassenConfig};
use locmps::workloads::synthetic::{synthetic_graph, SyntheticConfig};
use locmps::workloads::tce::{ccsd_t1_graph, TceConfig};
use locmps::workloads::toys::{chain, fork_join, independent};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// (a) disarmed watchdog + empty faults == the pinned golden traces
// ---------------------------------------------------------------------

/// The golden zoo (same workloads and clusters as `tests/golden_zoo.rs`).
fn zoo() -> Vec<(&'static str, TaskGraph)> {
    vec![
        ("chain", chain(6, 10.0, 20.0)),
        ("fork_join", fork_join(5, 8.0, 15.0)),
        ("independent", independent(6, 12.0, 0.2)),
        (
            "synthetic",
            synthetic_graph(&SyntheticConfig {
                n_tasks: 18,
                ccr: 0.5,
                seed: 77,
                ..Default::default()
            }),
        ),
        (
            "strassen",
            strassen_graph(&StrassenConfig {
                n: 512,
                ..Default::default()
            }),
        ),
        (
            "ccsd_t1",
            ccsd_t1_graph(&TceConfig {
                n_occ: 16,
                n_virt: 64,
                ..Default::default()
            }),
        ),
    ]
}

fn fnv(text: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Mirror of `ONLINE_GOLDEN` in `tests/golden_zoo.rs`: the fault-free
/// `OnlineLocbs` trace fingerprints pinned before the straggler
/// machinery existed. This test must match them with the watchdog off.
const ONLINE_GOLDEN: &[(&str, u64)] = &[
    ("chain/ovl/online-locbs", 0x2f27a9a230875a07),
    ("chain/noovl/online-locbs", 0x2f27a9a230875a07),
    ("fork_join/ovl/online-locbs", 0xa07ab444da17e82c),
    ("fork_join/noovl/online-locbs", 0xbc8a92bc7a1dd01d),
    ("independent/ovl/online-locbs", 0x88777aa2c347230f),
    ("independent/noovl/online-locbs", 0x88777aa2c347230f),
    ("synthetic/ovl/online-locbs", 0x2050c643bb33c7ca),
    ("synthetic/noovl/online-locbs", 0x012bd9e409ae32ab),
    ("strassen/ovl/online-locbs", 0xc3692116786fa996),
    ("strassen/noovl/online-locbs", 0xeed236db07ee3ba4),
    ("ccsd_t1/ovl/online-locbs", 0x99c14045cdd17f7b),
    ("ccsd_t1/noovl/online-locbs", 0x78983ddd702114c7),
];

#[test]
fn disarmed_watchdog_reproduces_the_online_golden_fingerprints() {
    // Every straggler knob at a non-default value EXCEPT the threshold:
    // with the watchdog disarmed and no faults injected, none of the new
    // machinery may leave a trace — bit-identical to the pinned seeds.
    let cfg = OnlineConfig {
        straggler_threshold: f64::INFINITY,
        max_speculative: 5,
        max_attempts: 3,
        backoff: 7.5,
        ..OnlineConfig::default()
    };
    let mut idx = 0;
    for (wname, g) in zoo() {
        for (cname, cluster) in [
            ("ovl", Cluster::new(7, 50.0)),
            ("noovl", Cluster::new(7, 50.0).without_overlap()),
        ] {
            let trace = RuntimeEngine::new(&g, &cluster, cfg).run(&mut OnlineLocbs::default());
            let fp = fnv(&serde_json::to_string(&trace).expect("traces serialize"));
            let (gname, gfp) = ONLINE_GOLDEN[idx];
            assert_eq!(format!("{wname}/{cname}/online-locbs"), gname);
            assert_eq!(
                fp, gfp,
                "{gname}: disarmed straggler machinery changed the trace bytes"
            );
            idx += 1;
        }
    }
    assert_eq!(idx, ONLINE_GOLDEN.len());
}

// ---------------------------------------------------------------------
// (b) speculation is bounded and every duplicate is accounted for
// ---------------------------------------------------------------------

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..12, any::<u64>(), 0.1..0.45f64).prop_map(|(n, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = TaskGraph::new();
        for i in 0..n {
            let work = 2.0 + 30.0 * next();
            let a = 1.0 + 40.0 * next();
            let sigma = 2.5 * next();
            let model = SpeedupModel::Downey(DowneyParams::new(a, sigma).unwrap());
            g.add_task(format!("t{i}"), ExecutionProfile::new(work, model).unwrap());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if next() < density {
                    g.add_edge(TaskId(i as u32), TaskId(j as u32), 200.0 * next())
                        .unwrap();
                }
            }
        }
        g
    })
}

/// A straggler-heavy adversity script: a quarter of the processors are
/// slowed 6x for the whole run, plus one scripted crash.
fn straggler_plan(g: &TaskGraph, p: usize, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for i in 0..(p / 4).max(1) {
        plan.push(Fault::Slowdown {
            proc: (((seed as usize).wrapping_add(i * 3)) % p) as u32,
            from: 0.0,
            until: 1e9,
            factor: 6.0,
        })
        .expect("slowdown fault is valid");
    }
    plan.push(Fault::Crash {
        task: TaskId((seed % g.n_tasks() as u64) as u32),
        at_frac: 0.25 + 0.5 * ((seed / 7) % 2) as f64,
        attempts: 1 + (seed % 2) as u32,
    })
    .expect("crash fault is valid");
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn speculation_is_bounded_and_every_duplicate_is_closed(
        g in arb_graph(),
        p in 2usize..7,
        seed in any::<u64>(),
        max_spec in 1usize..4,
        use_replan in any::<bool>(),
    ) {
        let hedged = if use_replan { "hedged-replan" } else { "hedged-retryshrink" };
        let cluster = Cluster::new(p, 25.0);
        let cfg = OnlineConfig {
            seed,
            exec_cv: 0.3,
            straggler_threshold: 1.5,
            max_speculative: max_spec,
            ..OnlineConfig::default()
        };
        let faults = straggler_plan(&g, p, seed);
        let mut recovery = recovery_by_name(hedged).expect("known recovery");
        let trace = RuntimeEngine::new(&g, &cluster, cfg)
            .run_with_faults(&mut PlanFollower::locmps(), &faults, recovery.as_mut());

        // Replay the log: track which speculative attempts are open.
        let mut open: Vec<(TaskId, u32)> = Vec::new();
        for ev in &trace.events {
            match ev.kind {
                TraceEventKind::SpeculativeLaunch { task, attempt, .. } => {
                    prop_assert!(
                        !open.contains(&(task, attempt)),
                        "duplicate speculative launch of {task} attempt {attempt}"
                    );
                    open.push((task, attempt));
                    prop_assert!(
                        open.len() <= max_spec,
                        "{} speculative attempts in flight exceeds max_speculative={max_spec}",
                        open.len()
                    );
                }
                TraceEventKind::TaskFinish { task, attempt }
                | TraceEventKind::AttemptKilled { task, attempt, .. }
                | TraceEventKind::TaskCrash { task, attempt, .. } => {
                    open.retain(|&o| o != (task, attempt));
                }
                _ => {}
            }
        }
        prop_assert!(
            open.is_empty(),
            "speculative attempts never closed: {open:?}"
        );
        // And the hedged trace still passes the full LM3xx audit.
        let report = analyze_trace(&trace, &g, &cluster);
        prop_assert!(!report.has_errors(), "{}: {}", hedged, report.render_text());
    }

    // -----------------------------------------------------------------
    // (c) a shrunk chaos reproducer still reproduces the failure key
    // -----------------------------------------------------------------

    #[test]
    fn minimized_chaos_reproducers_still_reproduce(campaign_seed in 0u64..64) {
        let g = fork_join(4, 8.0, 18.0);
        let cluster = Cluster::new(3, 25.0);
        let cfg = ChaosConfig {
            inject: true,
            ..ChaosConfig::default()
        };
        // Tripwire oracle: any observed crash of task 0 is a "failure"
        // (guaranteed by inject), keyed INJECTED.
        let oracle = |trace: &locmps::runtime::ExecutionTrace,
                      _: &TaskGraph,
                      _: &Cluster|
         -> Option<String> {
            trace
                .events
                .iter()
                .any(|e| {
                    matches!(
                        e.kind,
                        TraceEventKind::TaskCrash { task: TaskId(0), .. }
                    )
                })
                .then(|| "INJECTED: task 0 crash observed".to_string())
        };
        let workloads = vec![("fork_join".to_string(), g.clone())];
        let report = run_chaos(
            &workloads,
            &cluster,
            &["retryshrink".to_string()],
            1,
            &ChaosConfig {
                engine: OnlineConfig {
                    seed: campaign_seed,
                    ..cfg.engine
                },
                ..cfg
            },
            oracle,
        );
        prop_assert_eq!(report.failures.len(), 1, "the spike trips every campaign");
        for f in &report.failures {
            // Re-run the minimized plan from its printed spec: the same
            // failure key must fire again.
            let minimized = FaultPlan::parse(&f.minimized_spec).expect("specs round-trip");
            let mut recovery = recovery_by_name(&f.recovery).expect("known recovery");
            let trace = RuntimeEngine::new(
                &g,
                &cluster,
                OnlineConfig {
                    seed: campaign_seed,
                    ..cfg.engine
                },
            )
            .run_with_faults(&mut OnlineLocbs::default(), &minimized, recovery.as_mut());
            let error = oracle(&trace, &g, &cluster);
            prop_assert!(
                error.is_some(),
                "minimized spec {:?} no longer reproduces {:?}",
                &f.minimized_spec,
                &f.error
            );
            let key = |s: &str| s.split(':').next().unwrap_or("").to_string();
            prop_assert_eq!(
                key(&error.unwrap()),
                key(&f.error),
                "failure key drifted under shrinking"
            );
        }
    }
}
