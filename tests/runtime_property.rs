//! Property tests for the online runtime's fault-injection and recovery
//! machinery: random workloads × random fault plans × every recovery
//! policy, with the `LM3xx` trace diagnostics as the invariant oracle.
//!
//! The invariants:
//! * the structured event log never shows a causality violation, a
//!   double-booked processor, an attempt on a failed processor, or a
//!   dangling attempt (every start resolves);
//! * every task either completes or the trace records why not (an abort
//!   event naming it) — no task is silently dropped;
//! * identical seeds and fault plans give **bit-identical** traces for
//!   every recovery policy.

use locmps::analysis::analyze_trace;
use locmps::prelude::*;
use locmps::runtime::{
    FailStop, Fault, FaultPlan, OnlineConfig, PlanFollower, RecoveryPolicy, Replan, RetryShrink,
    RuntimeEngine,
};
use locmps::speedup::DowneyParams;
use locmps::taskgraph::TaskId;
use locmps::workloads::toys::fork_join;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..12, any::<u64>(), 0.1..0.45f64).prop_map(|(n, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = TaskGraph::new();
        for i in 0..n {
            let work = 2.0 + 30.0 * next();
            let a = 1.0 + 40.0 * next();
            let sigma = 2.5 * next();
            let model = SpeedupModel::Downey(DowneyParams::new(a, sigma).unwrap());
            g.add_task(format!("t{i}"), ExecutionProfile::new(work, model).unwrap());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if next() < density {
                    g.add_edge(TaskId(i as u32), TaskId(j as u32), 200.0 * next())
                        .unwrap();
                }
            }
        }
        g
    })
}

/// A seeded adversity script for a run of `g` on `p` processors whose
/// fault-free makespan is `m0`: up to `p-1` processor failures plus a
/// scripted crash of one task.
fn fault_plan(g: &TaskGraph, p: usize, m0: f64, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::random_proc_failures(seed, p, (seed % 3) as usize, 0.7 * m0);
    let victim = TaskId((seed % g.n_tasks() as u64) as u32);
    plan.push(Fault::Crash {
        task: victim,
        at_frac: 0.25 + 0.5 * ((seed / 7) % 2) as f64,
        attempts: 1 + (seed % 2) as u32,
    })
    .expect("crash fault is valid");
    plan
}

fn recoveries() -> Vec<Box<dyn RecoveryPolicy>> {
    vec![
        Box::new(FailStop),
        Box::new(RetryShrink::new()),
        Box::new(Replan::locmps()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_recovery_policy_yields_a_coherent_trace(
        g in arb_graph(),
        p in 2usize..7,
        seed in any::<u64>(),
    ) {
        let cluster = Cluster::new(p, 25.0);
        let m0 = RuntimeEngine::new(&g, &cluster, OnlineConfig::default())
            .run(&mut PlanFollower::locmps())
            .makespan;
        let faults = fault_plan(&g, p, m0, seed);
        for mut recovery in recoveries() {
            let trace = RuntimeEngine::new(&g, &cluster, OnlineConfig::default())
                .run_with_faults(&mut PlanFollower::locmps(), &faults, recovery.as_mut());
            // The LM3xx battery *is* the invariant set: causality,
            // double-booking, dead-processor launches, dangling attempts,
            // and completes-or-explained (orphan detection).
            let report = analyze_trace(&trace, &g, &cluster);
            prop_assert!(
                !report.has_errors(),
                "{}: {}", recovery.name(), report.render_text()
            );
            // The trace's own accounting agrees with its event log.
            prop_assert_eq!(trace.completed, trace.schedule.len());
            prop_assert!(trace.is_complete() != trace.aborted || trace.n_tasks == 0);
        }
    }

    /// `to_spec → parse` must reproduce every admissible plan bit for bit,
    /// including adversarial floats decoded straight from raw bit patterns
    /// (subnormals, maximal mantissas, huge magnitudes).
    #[test]
    fn fault_plan_spec_round_trips_for_arbitrary_floats(
        bits in any::<u64>(),
        proc in 0u32..8,
        attempts in 1u32..5,
    ) {
        let raw = f64::from_bits(bits);
        // Fold non-finite draws onto a finite value instead of discarding
        // the case (the vendored proptest has no prop_assume).
        let at = if raw.is_finite() { raw.abs() } else { 1.0 + (bits % 1024) as f64 };
        // Window arithmetic needs from + 1 to exceed from exactly.
        let from = at % 1e15;
        let frac = at.fract().clamp(f64::MIN_POSITIVE, 1.0 - 1e-12);
        let mut plan = FaultPlan::new();
        plan.push(Fault::ProcFail { proc, at }).unwrap();
        plan.push(Fault::Slowdown { proc, from, until: from + 1.0, factor: 1.0 + at % 7.0 })
            .unwrap();
        plan.push(Fault::Crash { task: TaskId(proc), at_frac: frac, attempts }).unwrap();
        let spec = plan.to_spec();
        let back = FaultPlan::parse(&spec);
        prop_assert!(back.is_ok(), "unparseable spec `{}`: {:?}", spec, back.err());
        prop_assert_eq!(back.unwrap(), plan, "lossy round-trip through `{}`", spec);
    }

    #[test]
    fn identical_seeds_give_bit_identical_traces(
        g in arb_graph(),
        p in 2usize..6,
        seed in any::<u64>(),
    ) {
        let cluster = Cluster::new(p, 25.0);
        let cfg = OnlineConfig { seed, exec_cv: 0.2, ..OnlineConfig::default() };
        let m0 = RuntimeEngine::new(&g, &cluster, OnlineConfig::default())
            .run(&mut PlanFollower::locmps())
            .makespan;
        let faults = fault_plan(&g, p, m0, seed);
        for mut recovery in recoveries() {
            let a = RuntimeEngine::new(&g, &cluster, cfg)
                .run_with_faults(&mut PlanFollower::locmps(), &faults, recovery.as_mut());
            let mut again = recoveries()
                .into_iter()
                .find(|r| r.name() == recovery.name())
                .expect("same policy");
            let b = RuntimeEngine::new(&g, &cluster, cfg)
                .run_with_faults(&mut PlanFollower::locmps(), &faults, again.as_mut());
            prop_assert_eq!(&a, &b, "{} trace is not reproducible", recovery.name());
        }
    }
}

/// The PR's acceptance scenario, pinned deterministically: a 2-failure
/// plan under which fail-stop cannot finish but both real recovery
/// policies complete every task.
#[test]
fn recoveries_survive_a_double_failure_failstop_does_not() {
    let g = fork_join(6, 10.0, 25.0);
    let cluster = Cluster::new(4, 25.0);
    let m0 = RuntimeEngine::new(&g, &cluster, OnlineConfig::default())
        .run(&mut PlanFollower::locmps())
        .makespan;
    let faults = FaultPlan::random_proc_failures(3, cluster.n_procs, 2, 0.6 * m0);

    let run = |recovery: &mut dyn RecoveryPolicy| {
        RuntimeEngine::new(&g, &cluster, OnlineConfig::default()).run_with_faults(
            &mut PlanFollower::locmps(),
            &faults,
            recovery,
        )
    };

    let fs = run(&mut FailStop);
    assert!(
        fs.aborted && !fs.is_complete(),
        "fail-stop should lose tasks under a double failure (completed {}/{})",
        fs.completed,
        fs.n_tasks
    );

    for mut recovery in [
        Box::new(RetryShrink::new()) as Box<dyn RecoveryPolicy>,
        Box::new(Replan::locmps()),
    ] {
        let trace = run(recovery.as_mut());
        assert!(
            trace.is_complete(),
            "{} should complete all tasks ({}/{})",
            recovery.name(),
            trace.completed,
            trace.n_tasks
        );
        assert!(
            trace.makespan >= m0,
            "{}: recovery cannot beat the fault-free run",
            recovery.name()
        );
        let report = analyze_trace(&trace, &g, &cluster);
        assert!(!report.has_errors(), "{}", report.render_text());
    }
}
