//! Cross-crate integration tests: every scheduler on every workload
//! family, validated end to end (schedule → validity → simulator replay).

use locmps::baselines::{Cpa, Cpr, DataParallel, TaskParallel};
use locmps::core::bounds::makespan_lower_bound;
use locmps::prelude::*;
use locmps::sim::{simulate, SimConfig};
use locmps::workloads::strassen::{strassen_graph, StrassenConfig};
use locmps::workloads::synthetic::{synthetic_graph, SyntheticConfig};
use locmps::workloads::tce::{ccsd_t1_graph, TceConfig};
use locmps::workloads::toys::{chain, fork_join, independent};

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(LocMps::default()),
        Box::new(LocMps::new(LocMpsConfig::icaslb())),
        Box::new(LocMps::new(LocMpsConfig::no_backfill())),
        Box::new(Cpr),
        Box::new(Cpa),
        Box::new(TaskParallel),
        Box::new(DataParallel),
    ]
}

fn workloads() -> Vec<(&'static str, TaskGraph)> {
    vec![
        ("chain", chain(6, 10.0, 20.0)),
        ("fork_join", fork_join(5, 8.0, 15.0)),
        ("independent", independent(6, 12.0, 0.2)),
        (
            "synthetic",
            synthetic_graph(&SyntheticConfig {
                n_tasks: 18,
                ccr: 0.5,
                seed: 77,
                ..Default::default()
            }),
        ),
        (
            "strassen",
            strassen_graph(&StrassenConfig {
                n: 512,
                ..Default::default()
            }),
        ),
        (
            "ccsd_t1",
            ccsd_t1_graph(&TceConfig {
                n_occ: 16,
                n_virt: 64,
                ..Default::default()
            }),
        ),
    ]
}

#[test]
fn every_scheduler_handles_every_workload() {
    for (wname, g) in workloads() {
        for cluster in [
            Cluster::new(7, 50.0),
            Cluster::new(7, 50.0).without_overlap(),
        ] {
            for s in all_schedulers() {
                let out = s
                    .schedule(&g, &cluster)
                    .unwrap_or_else(|e| panic!("{} on {wname}: {e}", s.name()));
                assert!(out.makespan() > 0.0, "{} on {wname}", s.name());
                // Replay never fails and produces a finite makespan.
                let rep = simulate(&g, &cluster, &out, SimConfig::default());
                assert!(
                    rep.makespan.is_finite() && rep.makespan > 0.0,
                    "{} on {wname}",
                    s.name()
                );
                // The executed makespan respects the absolute lower bound.
                let lb = makespan_lower_bound(&g, cluster.n_procs);
                assert!(
                    rep.makespan + 1e-6 >= lb,
                    "{} on {wname}: executed {} < bound {lb}",
                    s.name(),
                    rep.makespan
                );
            }
        }
    }
}

#[test]
fn locmps_executed_beats_or_matches_every_baseline_corner() {
    // LoC-MPS starts from TASK and probes the DATA corners, so under the
    // true model it can never execute worse than either pure paradigm.
    for (wname, g) in workloads() {
        for p in [2usize, 5, 9] {
            let cluster = Cluster::new(p, 50.0);
            let exec = |s: &dyn Scheduler| {
                let out = s.schedule(&g, &cluster).unwrap();
                simulate(&g, &cluster, &out, SimConfig::default()).makespan
            };
            let loc = exec(&LocMps::default());
            let task = exec(&TaskParallel);
            let data = exec(&DataParallel);
            assert!(
                loc <= task * (1.0 + 1e-9),
                "{wname} P={p}: LoC-MPS {loc} vs TASK {task}"
            );
            assert!(
                loc <= data * (1.0 + 1e-9),
                "{wname} P={p}: LoC-MPS {loc} vs DATA {data}"
            );
        }
    }
}

#[test]
fn comm_aware_schedules_replay_exactly() {
    // LoC-MPS and TASK plan under the model the simulator replays: the
    // claimed and executed makespans must agree to numerical precision.
    for (wname, g) in workloads() {
        for cluster in [
            Cluster::new(6, 50.0),
            Cluster::new(6, 50.0).without_overlap(),
        ] {
            for s in [&LocMps::default() as &dyn Scheduler, &TaskParallel] {
                let out = s.schedule(&g, &cluster).unwrap();
                let rep = simulate(&g, &cluster, &out, SimConfig::default());
                assert!(
                    (rep.makespan - out.makespan()).abs() < 1e-6 * rep.makespan.max(1.0),
                    "{} on {wname} ({:?}): claimed {} executed {}",
                    s.name(),
                    cluster.overlap,
                    out.makespan(),
                    rep.makespan
                );
            }
        }
    }
}

#[test]
fn schedules_validate_under_their_planning_model() {
    let cluster = Cluster::new(5, 50.0);
    let true_model = locmps::core::CommModel::new(&cluster);
    let blind = locmps::core::CommModel::blind(&cluster);
    for (wname, g) in workloads() {
        let loc = LocMps::default().schedule(&g, &cluster).unwrap();
        loc.schedule
            .validate(&g, &true_model)
            .unwrap_or_else(|e| panic!("LoC-MPS invalid on {wname}: {e}"));
        let ica = LocMps::new(LocMpsConfig::icaslb())
            .schedule(&g, &cluster)
            .unwrap();
        ica.schedule
            .validate(&g, &blind)
            .unwrap_or_else(|e| panic!("iCASLB invalid on {wname}: {e}"));
        let data = DataParallel.schedule(&g, &cluster).unwrap();
        data.schedule
            .validate(&g, &true_model)
            .unwrap_or_else(|e| panic!("DATA invalid on {wname}: {e}"));
    }
}

#[test]
fn bigger_clusters_never_hurt_locmps() {
    let g = synthetic_graph(&SyntheticConfig {
        n_tasks: 15,
        ccr: 0.2,
        seed: 5,
        ..Default::default()
    });
    let mut prev = f64::INFINITY;
    for p in [1usize, 2, 4, 8, 16] {
        let cluster = Cluster::fast_ethernet(p);
        let out = LocMps::default().schedule(&g, &cluster).unwrap();
        let ms = simulate(&g, &cluster, &out, SimConfig::default()).makespan;
        assert!(
            ms <= prev * (1.0 + 1e-9),
            "P={p}: makespan {ms} worse than smaller cluster's {prev}"
        );
        prev = ms;
    }
}
