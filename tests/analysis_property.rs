//! Property tests for the schedule analyzer: take a known-valid executed
//! schedule, inject a specific corruption, and assert the analyzer reports
//! the matching `LM1xx` code. The analyzer must be *exhaustive* (it keeps
//! going after the first problem), so corruptions must never be masked.

use locmps::analysis::{analyze_schedule, codes, Severity};
use locmps::core::{CommModel, Schedule, ScheduledTask};
use locmps::platform::{ProcId, ProcSet};
use locmps::prelude::*;
use locmps::sim::{simulate, SimConfig};
use locmps::speedup::DowneyParams;
use locmps::taskgraph::TaskId;
use proptest::prelude::*;

/// Random DAG matching the `property_cross` generator idiom.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (3usize..12, any::<u64>(), 0.15..0.45f64).prop_map(|(n, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = TaskGraph::new();
        for i in 0..n {
            let work = 2.0 + 30.0 * next();
            let a = 1.0 + 40.0 * next();
            let sigma = 2.5 * next();
            let model = SpeedupModel::Downey(DowneyParams::new(a, sigma).unwrap());
            g.add_task(format!("t{i}"), ExecutionProfile::new(work, model).unwrap());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if next() < density {
                    g.add_edge(TaskId(i as u32), TaskId(j as u32), 150.0 * next())
                        .unwrap();
                }
            }
        }
        g
    })
}

/// A valid executed schedule to corrupt, plus its graph and cluster.
fn valid_schedule(g: &TaskGraph, p: usize) -> (Schedule, Cluster) {
    let cluster = Cluster::new(p, 25.0);
    let out = LocMps::default().schedule(g, &cluster).unwrap();
    let rep = simulate(g, &cluster, &out, SimConfig::default());
    (rep.executed, cluster)
}

fn entries_of(s: &Schedule) -> Vec<ScheduledTask> {
    s.entries().to_vec()
}

/// First processor id outside the cluster, plus a margin.
fn out_of_range_proc(cluster: &Cluster) -> ProcId {
    cluster.n_procs as ProcId + 3
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dropping_an_entry_reports_unscheduled(g in arb_graph(), p in 2usize..8, pick in any::<u64>()) {
        let (s, cluster) = valid_schedule(&g, p);
        let model = CommModel::new(&cluster);
        if s.len() <= 1 { return Ok(()); }
        let mut entries = entries_of(&s);
        let victim = entries.remove((pick as usize) % entries.len()).task;
        let corrupted = Schedule::from_entries(entries);
        let diag = analyze_schedule(&corrupted, &g, &model);
        let hits: Vec<_> = diag.by_code(codes::UNSCHEDULED).collect();
        prop_assert!(
            hits.iter().any(|d| d.subject == g.task(victim).name || d.subject.contains(&victim.to_string())),
            "expected LM101 for {victim}:\n{}", diag.render_text()
        );
        prop_assert!(diag.has_errors());
    }

    #[test]
    fn emptying_a_procset_reports_empty_procset(g in arb_graph(), p in 2usize..8, pick in any::<u64>()) {
        let (s, cluster) = valid_schedule(&g, p);
        let model = CommModel::new(&cluster);
        let mut entries = entries_of(&s);
        let i = (pick as usize) % entries.len();
        entries[i].procs = ProcSet::new();
        let diag = analyze_schedule(&Schedule::from_entries(entries), &g, &model);
        prop_assert!(diag.has_code(codes::EMPTY_PROCSET), "{}", diag.render_text());
        prop_assert!(diag.has_errors());
    }

    #[test]
    fn out_of_range_processor_is_reported(g in arb_graph(), p in 2usize..8, pick in any::<u64>()) {
        let (s, cluster) = valid_schedule(&g, p);
        let model = CommModel::new(&cluster);
        let mut entries = entries_of(&s);
        let i = (pick as usize) % entries.len();
        entries[i].procs.insert(out_of_range_proc(&cluster));
        let diag = analyze_schedule(&Schedule::from_entries(entries), &g, &model);
        prop_assert!(diag.has_code(codes::PROC_OUT_OF_RANGE), "{}", diag.render_text());
        prop_assert!(diag.has_errors());
    }

    #[test]
    fn negative_duration_reports_bad_timing(g in arb_graph(), p in 2usize..8, pick in any::<u64>()) {
        let (s, cluster) = valid_schedule(&g, p);
        let model = CommModel::new(&cluster);
        let mut entries = entries_of(&s);
        let i = (pick as usize) % entries.len();
        // finish strictly before compute_start: unambiguous timing nonsense.
        entries[i].finish = entries[i].compute_start - 1.0;
        let diag = analyze_schedule(&Schedule::from_entries(entries), &g, &model);
        prop_assert!(diag.has_code(codes::BAD_TIMING), "{}", diag.render_text());
        prop_assert!(diag.has_errors());
    }

    #[test]
    fn overlapping_a_busy_processor_is_caught(g in arb_graph(), p in 2usize..8, pick in any::<u64>()) {
        let (s, cluster) = valid_schedule(&g, p);
        let model = CommModel::new(&cluster);
        if s.len() <= 1 { return Ok(()); }
        let mut entries = entries_of(&s);
        let i = (pick as usize) % entries.len();
        let j = (i + 1) % entries.len();
        // Force task j onto task i's processors over task i's exact window,
        // preserving its duration-vs-et consistency as little as possible —
        // the analyzer must flag *something* fatal (double booking, timing,
        // or a precedence break), never pass it.
        entries[j].procs = entries[i].procs.clone();
        entries[j].start = entries[i].start;
        entries[j].compute_start = entries[i].compute_start;
        entries[j].finish = entries[i].finish;
        let diag = analyze_schedule(&Schedule::from_entries(entries), &g, &model);
        prop_assert!(diag.has_errors(), "corruption passed clean:\n{}", diag.render_text());
        prop_assert!(
            diag.has_code(codes::DOUBLE_BOOKING)
                || diag.has_code(codes::BAD_TIMING)
                || diag.has_code(codes::PRECEDENCE_VIOLATED),
            "unexpected codes:\n{}", diag.render_text()
        );
    }

    #[test]
    fn shifting_a_consumer_earlier_breaks_precedence(g in arb_graph(), p in 2usize..8) {
        let (s, cluster) = valid_schedule(&g, p);
        let model = CommModel::new(&cluster);
        // Find a data edge and pull its consumer to time zero; unless the
        // consumer already started at zero this must produce an error.
        let Some((_, edge)) = g.edges().find(|(_, e)| {
            let dst = s.get(e.dst).unwrap();
            dst.compute_start > 1e-3
        }) else {
            return Ok(()); // no suitable edge in this instance
        };
        let mut entries = entries_of(&s);
        let idx = entries.iter().position(|e| e.task == edge.dst).unwrap();
        let dur = entries[idx].finish - entries[idx].compute_start;
        entries[idx].start = 0.0;
        entries[idx].compute_start = 0.0;
        entries[idx].finish = dur;
        let diag = analyze_schedule(&Schedule::from_entries(entries), &g, &model);
        prop_assert!(diag.has_errors(), "{}", diag.render_text());
    }

    #[test]
    fn valid_schedules_stay_clean_and_match_validate(g in arb_graph(), p in 2usize..8) {
        let (s, cluster) = valid_schedule(&g, p);
        let model = CommModel::new(&cluster);
        let diag = analyze_schedule(&s, &g, &model);
        prop_assert_eq!(diag.count(Severity::Error), 0, "{}", diag.render_text());
        prop_assert!(s.validate(&g, &model).is_ok());
    }
}
