//! Golden-output pinning for the scheduler hot path: the optimized LoCBS /
//! LoC-MPS implementations must produce **bit-identical** schedules to the
//! seed implementation on the full workload zoo.
//!
//! Each fingerprint below is an FNV-1a hash of the serialized schedule
//! (processor sets and full-precision start/compute/finish times), captured
//! from the pre-optimization implementation. Any behavioral drift in the
//! placement kernel — candidate enumeration, locality selection, tie
//! breaking, estimate caching — changes a fingerprint and fails this test.
//!
//! Regenerate (after an *intentional* semantic change only) with
//! `cargo test --release --test golden_zoo -- --nocapture dump_fingerprints --ignored`.

use locmps::core::{Allocation, CommModel, Locbs, LocbsOptions, LocbsScratch};
use locmps::prelude::*;
use locmps::workloads::strassen::{strassen_graph, StrassenConfig};
use locmps::workloads::synthetic::{synthetic_graph, SyntheticConfig};
use locmps::workloads::tce::{ccsd_t1_graph, TceConfig};
use locmps::workloads::toys::{chain, fork_join, independent};

fn workloads() -> Vec<(&'static str, TaskGraph)> {
    vec![
        ("chain", chain(6, 10.0, 20.0)),
        ("fork_join", fork_join(5, 8.0, 15.0)),
        ("independent", independent(6, 12.0, 0.2)),
        (
            "synthetic",
            synthetic_graph(&SyntheticConfig {
                n_tasks: 18,
                ccr: 0.5,
                seed: 77,
                ..Default::default()
            }),
        ),
        (
            "strassen",
            strassen_graph(&StrassenConfig {
                n: 512,
                ..Default::default()
            }),
        ),
        (
            "ccsd_t1",
            ccsd_t1_graph(&TceConfig {
                n_occ: 16,
                n_virt: 64,
                ..Default::default()
            }),
        ),
    ]
}

/// FNV-1a over the serialized schedule: start/compute/finish are printed
/// with shortest-round-trip precision, so the hash pins exact f64 bits.
fn fingerprint(s: &locmps::core::Schedule) -> u64 {
    let text = serde_json::to_string(s).expect("schedules serialize");
    let mut h = 0xcbf29ce484222325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic mixed-width allocation for the direct-LoCBS cases.
fn mixed_alloc(g: &TaskGraph, p: usize) -> Allocation {
    let half = (p / 2).max(1);
    Allocation::from_vec(g.task_ids().map(|t| 1 + (t.index() * 7) % half).collect())
}

fn locmps_cases() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (wname, g) in workloads() {
        for (cname, cluster) in [
            ("ovl", Cluster::new(7, 50.0)),
            ("noovl", Cluster::new(7, 50.0).without_overlap()),
        ] {
            for sched in [
                LocMps::default(),
                LocMps::new(LocMpsConfig::icaslb()),
                LocMps::new(LocMpsConfig::no_backfill()),
            ] {
                let outp = sched.schedule(&g, &cluster).expect("zoo schedules");
                out.push((
                    format!("{wname}/{cname}/{}", sched.name()),
                    fingerprint(&outp.schedule),
                ));
            }
        }
    }
    out
}

fn locbs_cases() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (wname, g) in workloads() {
        for (cname, cluster) in [
            ("ovl", Cluster::new(7, 50.0)),
            ("noovl", Cluster::new(7, 50.0).without_overlap()),
        ] {
            let model = CommModel::new(&cluster);
            let locbs = Locbs::new(model, LocbsOptions::default());
            let res = locbs
                .run(&g, &mixed_alloc(&g, cluster.n_procs))
                .expect("zoo places");
            out.push((
                format!("{wname}/{cname}/locbs-direct"),
                fingerprint(&res.schedule),
            ));
        }
    }
    out
}

/// Fault-free `OnlineLocbs` execution traces, fingerprinted whole —
/// events, schedule and makespan bits. Pins the run-time moulding +
/// placement path and the engine's event ordering, complementing the
/// offline tables above.
fn online_cases() -> Vec<(String, u64)> {
    use locmps::runtime::{OnlineConfig, OnlineLocbs, RuntimeEngine};
    let mut out = Vec::new();
    for (wname, g) in workloads() {
        for (cname, cluster) in [
            ("ovl", Cluster::new(7, 50.0)),
            ("noovl", Cluster::new(7, 50.0).without_overlap()),
        ] {
            let trace = RuntimeEngine::new(&g, &cluster, OnlineConfig::default())
                .run(&mut OnlineLocbs::default());
            assert!(trace.is_complete(), "{wname}/{cname}: fault-free zoo run");
            let text = serde_json::to_string(&trace).expect("traces serialize");
            let mut h = 0xcbf29ce484222325u64;
            for b in text.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            out.push((format!("{wname}/{cname}/online-locbs"), h));
        }
    }
    out
}

#[test]
#[ignore = "generator: prints the fingerprint tables for the constants below"]
fn dump_fingerprints() {
    println!("const LOCMPS_GOLDEN: &[(&str, u64)] = &[");
    for (name, fp) in locmps_cases() {
        println!("    (\"{name}\", 0x{fp:016x}),");
    }
    println!("];");
    println!("const LOCBS_GOLDEN: &[(&str, u64)] = &[");
    for (name, fp) in locbs_cases() {
        println!("    (\"{name}\", 0x{fp:016x}),");
    }
    println!("];");
    println!("const ONLINE_GOLDEN: &[(&str, u64)] = &[");
    for (name, fp) in online_cases() {
        println!("    (\"{name}\", 0x{fp:016x}),");
    }
    println!("];");
}

const LOCMPS_GOLDEN: &[(&str, u64)] = &[
    ("chain/ovl/LoC-MPS", 0x51b023f5229c1847),
    ("chain/ovl/iCASLB", 0x51b023f5229c1847),
    ("chain/ovl/LoC-MPS/no-backfill", 0x51b023f5229c1847),
    ("chain/noovl/LoC-MPS", 0x51b023f5229c1847),
    ("chain/noovl/iCASLB", 0x51b023f5229c1847),
    ("chain/noovl/LoC-MPS/no-backfill", 0x51b023f5229c1847),
    ("fork_join/ovl/LoC-MPS", 0xcad58329ff4f976a),
    ("fork_join/ovl/iCASLB", 0xcad58329ff4f976a),
    ("fork_join/ovl/LoC-MPS/no-backfill", 0xcad58329ff4f976a),
    ("fork_join/noovl/LoC-MPS", 0xcad58329ff4f976a),
    ("fork_join/noovl/iCASLB", 0xcad58329ff4f976a),
    ("fork_join/noovl/LoC-MPS/no-backfill", 0xcad58329ff4f976a),
    ("independent/ovl/LoC-MPS", 0x9e268f4e2b7a1e2d),
    ("independent/ovl/iCASLB", 0x9e268f4e2b7a1e2d),
    ("independent/ovl/LoC-MPS/no-backfill", 0x9e268f4e2b7a1e2d),
    ("independent/noovl/LoC-MPS", 0x9e268f4e2b7a1e2d),
    ("independent/noovl/iCASLB", 0x9e268f4e2b7a1e2d),
    ("independent/noovl/LoC-MPS/no-backfill", 0x9e268f4e2b7a1e2d),
    ("synthetic/ovl/LoC-MPS", 0x22479f276656b763),
    ("synthetic/ovl/iCASLB", 0x9001c635e80db80a),
    ("synthetic/ovl/LoC-MPS/no-backfill", 0x22479f276656b763),
    ("synthetic/noovl/LoC-MPS", 0x22479f276656b763),
    ("synthetic/noovl/iCASLB", 0x9001c635e80db80a),
    ("synthetic/noovl/LoC-MPS/no-backfill", 0x22479f276656b763),
    ("strassen/ovl/LoC-MPS", 0x5f633311a6ba48c7),
    ("strassen/ovl/iCASLB", 0xbfb85327f1fe267b),
    ("strassen/ovl/LoC-MPS/no-backfill", 0x5f633311a6ba48c7),
    ("strassen/noovl/LoC-MPS", 0x5f633311a6ba48c7),
    ("strassen/noovl/iCASLB", 0xbfb85327f1fe267b),
    ("strassen/noovl/LoC-MPS/no-backfill", 0x5f633311a6ba48c7),
    ("ccsd_t1/ovl/LoC-MPS", 0xfa7989cfa100eb68),
    ("ccsd_t1/ovl/iCASLB", 0x64efa7fc02c38a58),
    ("ccsd_t1/ovl/LoC-MPS/no-backfill", 0x201a9b306083fbc2),
    ("ccsd_t1/noovl/LoC-MPS", 0x12a4482b6f9fe7dc),
    ("ccsd_t1/noovl/iCASLB", 0x64efa7fc02c38a58),
    ("ccsd_t1/noovl/LoC-MPS/no-backfill", 0x7699ebfaac22fa29),
];
const LOCBS_GOLDEN: &[(&str, u64)] = &[
    ("chain/ovl/locbs-direct", 0xd3076428d01f69ef),
    ("chain/noovl/locbs-direct", 0x9e47840b54671825),
    ("fork_join/ovl/locbs-direct", 0xf1cb617eb7c3088d),
    ("fork_join/noovl/locbs-direct", 0xaf6bbb7952b0ba64),
    ("independent/ovl/locbs-direct", 0x9588bddb0d89f255),
    ("independent/noovl/locbs-direct", 0x9588bddb0d89f255),
    ("synthetic/ovl/locbs-direct", 0xe96b39a1b4874a63),
    ("synthetic/noovl/locbs-direct", 0x1bf08da4a0f6065c),
    ("strassen/ovl/locbs-direct", 0x7e027bda24fea542),
    ("strassen/noovl/locbs-direct", 0xb4dd641179a8d888),
    ("ccsd_t1/ovl/locbs-direct", 0xede3d0914594410a),
    ("ccsd_t1/noovl/locbs-direct", 0x783909ac63a4a579),
];

fn check(actual: Vec<(String, u64)>, golden: &[(&str, u64)]) {
    assert_eq!(
        actual.len(),
        golden.len(),
        "case count drifted — regenerate the table"
    );
    for ((name, fp), (gname, gfp)) in actual.iter().zip(golden) {
        assert_eq!(name, gname, "case order drifted — regenerate the table");
        assert_eq!(
            *fp, *gfp,
            "{name}: schedule is no longer bit-identical to the seed implementation"
        );
    }
}

#[test]
fn locmps_schedules_match_seed_fingerprints() {
    check(locmps_cases(), LOCMPS_GOLDEN);
}

#[test]
fn locbs_placements_match_seed_fingerprints() {
    check(locbs_cases(), LOCBS_GOLDEN);
}

const ONLINE_GOLDEN: &[(&str, u64)] = &[
    ("chain/ovl/online-locbs", 0x2f27a9a230875a07),
    ("chain/noovl/online-locbs", 0x2f27a9a230875a07),
    ("fork_join/ovl/online-locbs", 0xa07ab444da17e82c),
    ("fork_join/noovl/online-locbs", 0xbc8a92bc7a1dd01d),
    ("independent/ovl/online-locbs", 0x88777aa2c347230f),
    ("independent/noovl/online-locbs", 0x88777aa2c347230f),
    ("synthetic/ovl/online-locbs", 0x2050c643bb33c7ca),
    ("synthetic/noovl/online-locbs", 0x012bd9e409ae32ab),
    ("strassen/ovl/online-locbs", 0xc3692116786fa996),
    ("strassen/noovl/online-locbs", 0xeed236db07ee3ba4),
    ("ccsd_t1/ovl/online-locbs", 0x99c14045cdd17f7b),
    ("ccsd_t1/noovl/online-locbs", 0x78983ddd702114c7),
];

#[test]
fn online_traces_match_pinned_fingerprints() {
    check(online_cases(), ONLINE_GOLDEN);
}

/// Buffer reuse must be invisible: `run_into` with one schedule-DAG and one
/// scratch carried across repeated invocations has to serialize to exactly
/// the bytes a fresh `run` produces, on every zoo workload.
#[test]
fn reused_scratch_serializes_identically_across_zoo() {
    for (wname, g) in workloads() {
        for (cname, cluster) in [
            ("ovl", Cluster::new(7, 50.0)),
            ("noovl", Cluster::new(7, 50.0).without_overlap()),
        ] {
            let model = CommModel::new(&cluster);
            let locbs = Locbs::new(model, LocbsOptions::default());
            let alloc = mixed_alloc(&g, cluster.n_procs);
            let fresh = locbs.run(&g, &alloc).expect("zoo places");
            let mut dag = g.clone();
            let mut scratch = LocbsScratch::new();
            for round in 0..3 {
                let (schedule, makespan) = locbs
                    .run_into(&mut dag, &alloc, &mut scratch)
                    .expect("zoo places");
                assert_eq!(
                    serde_json::to_string(&schedule).unwrap(),
                    serde_json::to_string(&fresh.schedule).unwrap(),
                    "{wname}/{cname} round {round}: scratch reuse changed the schedule bytes"
                );
                assert_eq!(makespan, fresh.makespan, "{wname}/{cname} round {round}");
            }
            assert_eq!(
                dag, fresh.schedule_dag,
                "{wname}/{cname}: schedule-DAG drifted"
            );
        }
    }
}
