//! Property battery for the observation-driven allocation loop: the
//! [`PerfModelStore`] ingestion algebra, the `remold` recovery's capacity
//! discipline, and chaos campaigns with adaptation switched on.
//!
//! The invariants:
//! * store updates are **permutation-invariant** — any interleaving of
//!   the same observation multiset serializes to bit-identical JSON;
//! * a re-molded run never launches an attempt on a failed processor and
//!   never allots more processors than survive at launch time;
//! * random fault campaigns with adaptation on (`remold` and
//!   `hedged-remold`) stay LM3xx-clean end to end;
//! * minimized chaos reproducers found under `remold` still re-fire the
//!   same failure key.

use locmps::analysis::analyze_trace;
use locmps::prelude::*;
use locmps::runtime::chaos::{run_chaos, ChaosConfig};
use locmps::runtime::{
    recovery_by_name, Fault, FaultPlan, OnlineConfig, OnlineLocbs, PerfModelStore, PlanFollower,
    Remold, RuntimeEngine, TraceEventKind,
};
use locmps::speedup::DowneyParams;
use locmps::taskgraph::TaskId;
use locmps::workloads::toys::fork_join;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// (a) the store is a commutative monoid over observations
// ---------------------------------------------------------------------

/// One raw observation: (task index, width, predicted, observed).
type Obs = (usize, usize, f64, f64);

fn arb_observations() -> impl Strategy<Value = Vec<Obs>> {
    proptest::collection::vec((0usize..5, 1usize..9, 0.5..200.0f64, 0.5..200.0f64), 1..40)
}

/// Deterministic Fisher–Yates driven by an LCG, so the shuffle itself is
/// reproducible from the proptest seed.
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) as usize) % (i + 1);
        out.swap(i, j);
    }
    out
}

fn ingest(observations: &[Obs]) -> PerfModelStore {
    let mut store = PerfModelStore::new();
    for &(task, width, predicted, observed) in observations {
        store
            .observe(&format!("task{task}"), width, predicted, observed)
            .expect("strategy only draws positive finite runtimes");
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn store_updates_are_permutation_invariant(
        observations in arb_observations(),
        seed in any::<u64>(),
    ) {
        let in_order = ingest(&observations);
        let reordered = ingest(&shuffled(&observations, seed));
        prop_assert_eq!(in_order.n_observations(), observations.len());
        prop_assert_eq!(&in_order, &reordered);
        // Bit-identical persistence, not just logical equality: the
        // daemon's serialized store must not depend on arrival order.
        let a = in_order.to_json().expect("store serializes");
        let b = reordered.to_json().expect("store serializes");
        prop_assert_eq!(a.clone(), b);
        // And the round-trip through JSON is lossless.
        let back = PerfModelStore::from_json(&a).expect("round-trips");
        prop_assert_eq!(back, in_order);
    }

    #[test]
    fn degenerate_observations_error_and_leave_the_store_untouched(
        observations in arb_observations(),
        bad_predicted in prop_oneof![
            Just(0.0f64),
            Just(-3.0f64),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::MIN_POSITIVE / 2.0),
        ],
    ) {
        let mut store = ingest(&observations);
        let before = store.to_json().expect("store serializes");
        prop_assert!(store.observe("task0", 2, bad_predicted, 10.0).is_err());
        prop_assert!(store.observe("task0", 2, 10.0, bad_predicted).is_err());
        prop_assert!(store.observe("task0", 0, 10.0, 10.0).is_err());
        prop_assert_eq!(store.to_json().expect("store serializes"), before);
    }
}

// ---------------------------------------------------------------------
// (b) remold never exceeds survivor capacity
// ---------------------------------------------------------------------

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..12, any::<u64>(), 0.1..0.45f64).prop_map(|(n, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = TaskGraph::new();
        for i in 0..n {
            let work = 2.0 + 30.0 * next();
            let a = 1.0 + 40.0 * next();
            let sigma = 2.5 * next();
            let model = SpeedupModel::Downey(DowneyParams::new(a, sigma).unwrap());
            g.add_task(format!("t{i}"), ExecutionProfile::new(work, model).unwrap());
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if next() < density {
                    g.add_edge(TaskId(i as u32), TaskId(j as u32), 200.0 * next())
                        .unwrap();
                }
            }
        }
        g
    })
}

/// Mixed adversity: permanent processor failures early in the run plus a
/// slow pool that trips the watchdog — the signals `remold` answers.
fn adversity_plan(p: usize, seed: u64, kills: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for i in 0..kills {
        plan.push(Fault::ProcFail {
            proc: (((seed as usize).wrapping_add(i * 5)) % p) as u32,
            at: 1.0 + 3.0 * i as f64,
        })
        .expect("in-range failure");
    }
    for i in 0..(p / 4).max(1) {
        plan.push(Fault::Slowdown {
            proc: (((seed as usize).wrapping_add(i * 3 + 1)) % p) as u32,
            from: 0.0,
            until: 1e9,
            factor: 5.0,
        })
        .expect("slowdown fault is valid");
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn remold_never_exceeds_survivor_capacity(
        g in arb_graph(),
        p in 3usize..8,
        seed in any::<u64>(),
        kills in 0usize..2,
    ) {
        let cluster = Cluster::new(p, 25.0);
        let cfg = OnlineConfig {
            seed,
            exec_cv: 0.2,
            straggler_threshold: 1.5,
            ..OnlineConfig::default()
        };
        let faults = adversity_plan(p, seed, kills);
        let mut remold = Remold::locmps();
        let trace = RuntimeEngine::new(&g, &cluster, cfg)
            .run_with_faults(&mut PlanFollower::locmps(), &faults, &mut remold);

        // Replay the log, tracking the alive set: every launch must fit
        // inside the survivors of its moment.
        let mut alive = ProcSet::all(p);
        for ev in &trace.events {
            match &ev.kind {
                TraceEventKind::ProcDown { proc } => {
                    alive.remove(*proc);
                }
                TraceEventKind::TaskStart { task, procs, .. }
                | TraceEventKind::SpeculativeLaunch { task, procs, .. } => {
                    prop_assert!(
                        procs.is_subset(&alive),
                        "launch of {task} on {procs} reaches outside the \
                         alive set {alive}"
                    );
                    prop_assert!(
                        procs.len() <= alive.len(),
                        "launch of {task} allots {} > {} survivors",
                        procs.len(),
                        alive.len()
                    );
                }
                _ => {}
            }
        }
        // The learned store only ever holds tasks of this graph, at
        // widths the machine can serve.
        for (name, widths) in remold.store().tasks() {
            prop_assert!(
                (0..g.n_tasks()).any(|i| g.task(TaskId(i as u32)).name == name),
                "store learned unknown task {:?}", name
            );
            for w in widths {
                prop_assert!(w.width() >= 1 && w.width() <= p);
            }
        }
        // And the adaptive trace still passes the full LM3xx audit.
        let report = analyze_trace(&trace, &g, &cluster);
        prop_assert!(!report.has_errors(), "remold: {}", report.render_text());
    }

    // -----------------------------------------------------------------
    // (c) chaos with adaptation on stays LM3xx-clean
    // -----------------------------------------------------------------

    #[test]
    fn chaos_campaigns_with_adaptation_stay_clean(campaign_seed in 0u64..24) {
        let workloads = vec![("fork_join".to_string(), fork_join(4, 8.0, 18.0))];
        let cluster = Cluster::new(4, 25.0);
        let cfg = ChaosConfig {
            engine: OnlineConfig {
                seed: campaign_seed,
                ..ChaosConfig::default().engine
            },
            ..ChaosConfig::default()
        };
        let recoveries = vec!["remold".to_string(), "hedged-remold".to_string()];
        let report = run_chaos(
            &workloads,
            &cluster,
            &recoveries,
            2,
            &cfg,
            |trace, g, cluster| {
                let audit = analyze_trace(trace, g, cluster);
                audit.has_errors().then(|| {
                    format!(
                        "LM3XX: adaptive trace failed the audit: {}",
                        audit.render_text().lines().next().unwrap_or("")
                    )
                })
            },
        );
        prop_assert_eq!(report.cases, 4, "2 seeds x 2 adaptive recoveries");
        prop_assert!(
            report.ok(),
            "adaptive chaos produced audit failures: {:?}",
            report.failures
        );
    }

    // -----------------------------------------------------------------
    // (d) minimized reproducers under remold re-fire the same key
    // -----------------------------------------------------------------

    #[test]
    fn minimized_remold_reproducers_still_reproduce(campaign_seed in 0u64..32) {
        let g = fork_join(4, 8.0, 18.0);
        let cluster = Cluster::new(3, 25.0);
        let cfg = ChaosConfig {
            inject: true,
            engine: OnlineConfig {
                seed: campaign_seed,
                ..ChaosConfig::default().engine
            },
            ..ChaosConfig::default()
        };
        // Tripwire oracle (guaranteed by inject): shrinking must preserve
        // the failure key even when the recovery under test re-molds.
        let oracle = |trace: &locmps::runtime::ExecutionTrace,
                      _: &TaskGraph,
                      _: &Cluster|
         -> Option<String> {
            trace
                .events
                .iter()
                .any(|e| {
                    matches!(
                        e.kind,
                        TraceEventKind::TaskCrash { task: TaskId(0), .. }
                    )
                })
                .then(|| "INJECTED: task 0 crash observed".to_string())
        };
        let workloads = vec![("fork_join".to_string(), g.clone())];
        let report = run_chaos(
            &workloads,
            &cluster,
            &["remold".to_string()],
            1,
            &cfg,
            oracle,
        );
        prop_assert_eq!(report.failures.len(), 1, "the spike trips every campaign");
        for f in &report.failures {
            let minimized = FaultPlan::parse(&f.minimized_spec).expect("specs round-trip");
            let mut recovery = recovery_by_name(&f.recovery).expect("known recovery");
            let trace = RuntimeEngine::new(&g, &cluster, cfg.engine)
                .run_with_faults(&mut OnlineLocbs::default(), &minimized, recovery.as_mut());
            let error = oracle(&trace, &g, &cluster);
            prop_assert!(
                error.is_some(),
                "minimized spec {:?} no longer reproduces {:?}",
                &f.minimized_spec,
                &f.error
            );
            let key = |s: &str| s.split(':').next().unwrap_or("").to_string();
            prop_assert_eq!(
                key(&error.unwrap()),
                key(&f.error),
                "failure key drifted under shrinking"
            );
        }
    }
}
