//! Empirical competitive-ratio check of the PS-ONLINE baseline
//! (`locmps::baselines::OnlineMoldable`, Perotin & Sun arXiv 2304.14127)
//! against the zero-communication lower bound from `core::bounds`.
//!
//! Perotin & Sun prove their online moldable allocator is
//! `ρ`-competitive against `max(CP, W/P)` with constant `ρ` depending on
//! the speedup model: ~2.62 for **roofline** profiles (`S(p) = min(p, p̄)`,
//! which Downey's model with `σ = 0` realizes exactly) and ~4.74 under
//! **Amdahl's law**. This suite replays the whole workload-zoo DAG shapes
//! with zero-volume edges (the theorems are communication-free) and
//! profiles drawn from each family, and asserts the paper's ratio on
//! every (workload, P) cell.
//!
//! An online algorithm cannot beat `max(CP, W/P)` either, so the bound
//! itself is also sanity-checked from below (ratio ≥ 1).

use locmps::baselines::OnlineMoldable;
use locmps::core::makespan_lower_bound;
use locmps::prelude::*;
use locmps::workloads::strassen::{strassen_graph, StrassenConfig};
use locmps::workloads::synthetic::{synthetic_graph, SyntheticConfig};
use locmps::workloads::tce::{ccsd_t1_graph, TceConfig};
use locmps::workloads::toys::{chain, fork_join, independent};

/// Perotin & Sun's competitive ratio for roofline speedup profiles.
const ROOFLINE_RATIO: f64 = 2.62;
/// Perotin & Sun's competitive ratio under Amdahl's law.
const AMDAHL_RATIO: f64 = 4.74;

/// The zoo's DAG *shapes*; profiles and volumes get replaced per family.
fn zoo_shapes() -> Vec<(&'static str, TaskGraph)> {
    vec![
        ("chain", chain(6, 10.0, 20.0)),
        ("fork_join", fork_join(5, 8.0, 15.0)),
        ("independent", independent(6, 12.0, 0.2)),
        (
            "synthetic",
            synthetic_graph(&SyntheticConfig {
                n_tasks: 18,
                ccr: 0.5,
                seed: 77,
                ..Default::default()
            }),
        ),
        (
            "strassen",
            strassen_graph(&StrassenConfig {
                n: 512,
                ..Default::default()
            }),
        ),
        (
            "ccsd_t1",
            ccsd_t1_graph(&TceConfig {
                n_occ: 16,
                n_virt: 64,
                ..Default::default()
            }),
        ),
    ]
}

/// Rebuilds `g` with the same DAG shape, zero-volume edges, and per-task
/// profiles from `profile(i)` — sequential times and parameters varied
/// deterministically by task index so the suite exercises heterogeneous
/// mixes, not one repeated curve.
fn reshape(g: &TaskGraph, profile: impl Fn(usize) -> ExecutionProfile) -> TaskGraph {
    let mut out = TaskGraph::new();
    for (t, task) in g.tasks() {
        out.add_task(task.name.clone(), profile(t.index()));
    }
    for (_, e) in g.edges() {
        out.add_edge(e.src, e.dst, 0.0).unwrap();
    }
    out
}

/// Roofline: linear speedup up to an average parallelism `p̄`, flat after —
/// Downey's model at `σ = 0`.
fn roofline(i: usize) -> ExecutionProfile {
    let pbar = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0][i % 6];
    let seq = 5.0 + 3.0 * (i % 7) as f64;
    ExecutionProfile::new(seq, SpeedupModel::downey(pbar, 0.0).unwrap()).unwrap()
}

/// Amdahl's law with serial fractions from fully-parallel-ish to heavy.
fn amdahl(i: usize) -> ExecutionProfile {
    let f = [0.02, 0.05, 0.1, 0.2, 0.4][i % 5];
    let seq = 4.0 + 5.0 * (i % 5) as f64;
    ExecutionProfile::new(seq, SpeedupModel::amdahl(f).unwrap()).unwrap()
}

fn assert_ratio(family: &str, ratio: f64, profile: impl Fn(usize) -> ExecutionProfile + Copy) {
    let ps = OnlineMoldable::default();
    for (wname, shape) in zoo_shapes() {
        let g = reshape(&shape, profile);
        for p in [2usize, 4, 7, 16] {
            let cluster = Cluster::new(p, 125.0);
            let out = ps.schedule(&g, &cluster).expect("zoo schedules");
            let ms = out.schedule.makespan();
            let lb = makespan_lower_bound(&g, p);
            assert!(
                lb > 0.0 && ms >= lb - 1e-9,
                "{family}/{wname}/P={p}: makespan {ms} below the lower bound {lb}"
            );
            let observed = ms / lb;
            assert!(
                observed <= ratio + 1e-9,
                "{family}/{wname}/P={p}: observed ratio {observed:.3} exceeds \
                 the paper's {ratio} (makespan {ms:.3}, bound {lb:.3})"
            );
        }
    }
}

#[test]
fn roofline_profiles_meet_the_paper_ratio() {
    assert_ratio("roofline", ROOFLINE_RATIO, roofline);
}

#[test]
fn amdahl_profiles_meet_the_paper_ratio() {
    assert_ratio("amdahl", AMDAHL_RATIO, amdahl);
}

/// The cap is what the proof leans on: an uncapped variant (μ = 1) must
/// still schedule correctly, but the capped default can never allot more
/// than ⌈P/2⌉ to any task — verified across the zoo.
#[test]
fn default_cap_is_respected_across_the_zoo() {
    let ps = OnlineMoldable::default();
    for (wname, shape) in zoo_shapes() {
        let g = reshape(&shape, roofline);
        let cluster = Cluster::new(16, 125.0);
        let out = ps.schedule(&g, &cluster).expect("zoo schedules");
        for t in g.task_ids() {
            assert!(
                out.allocation.np(t) <= 8,
                "{wname}: task {t:?} allotted {} > P/2",
                out.allocation.np(t)
            );
        }
    }
}
